#pragma once
// Scalar replacement / three-address lowering (paper §2.1).
//
// Rewrites every floating-point assignment into the load / single-operator
// / store form the paper's templates are defined over:
//
//   res = res + A[0]*B[0]        →  tmp0 = A[0]; tmp1 = B[0];
//                                   tmp2 = tmp0 * tmp1; res = res + tmp2;
//   C[0] = C[0] + res            →  tmp3 = C[0]; tmp4 = tmp3 + res;
//                                   C[0] = tmp4;
//
// Every introduced temp is written exactly once and read exactly once,
// which the Template Identifier exploits when matching dataflow patterns.
// Integer and pointer assignments (loop control, cursor updates) pass
// through untouched.
//
// Postcondition (the "IR invariant" of DESIGN.md §5): every F64 assignment
// is one of
//   scalar = array[const-or-var]          (load)
//   scalar = scalar-or-const OP scalar-or-const   (single operator)
//   scalar = scalar-or-const              (copy)
//   array[idx] = scalar                   (store)

#include "ir/kernel.hpp"

namespace augem::transform {

/// Applies scalar replacement to the whole kernel body.
void scalar_replace(ir::Kernel& kernel);

/// Verifies the postcondition above; throws augem::Error on violation.
void check_three_address_form(const ir::Kernel& kernel);

}  // namespace augem::transform
