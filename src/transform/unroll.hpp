#pragma once
// Loop unrolling and unroll&jam (paper §2.1).
//
// `unroll` rewrites a counted loop
//     for (v = lo; v < hi; v += s) B(v)
// into
//     for (v = lo; v < hi - (F*s - 1); v += F*s) { B(v); B(v+s); … }
//     for (v = v;  v < hi;            v += s)   B(v)        // remainder
// The remainder loop re-enters with the counter left by the main loop
// (rendered as `for (v = v; …)`), and is omitted when the caller asserts
// the trip count divides the factor (`assume_divisible`), as the GEMM macro
// driver does for its register-tile loops.
//
// `unroll_and_jam` unrolls an *outer* loop and fuses the resulting copies
// of the inner loop nest, recursively down to the innermost level, so the
// innermost body ends up with F adjacent copies of the original statements
// — the shape the paper's Fig. 13 shows for the 2×2-jammed GEMM kernel.
// Per-iteration scalars written inside the copies (e.g. the `res`
// accumulator) are renamed apart, producing `res`, `res1`, `res2`, … A
// conservative legality check verifies that the statements hoisted/sunk
// around fused loops do not touch state those loops use.

#include <string>

#include "ir/kernel.hpp"

namespace augem::transform {

/// Unrolls the unique loop over `loop_var` by `factor`.
/// Throws if the loop is absent, duplicated, or factor < 1.
void unroll(ir::Kernel& kernel, const std::string& loop_var, int factor,
            bool assume_divisible = false);

/// Unrolls the loop over `loop_var` by `factor` and jams the copies into
/// the nested loops. Requires every copy of the body to be structurally
/// parallel (which holds for the DLA kernels this framework targets).
void unroll_and_jam(ir::Kernel& kernel, const std::string& loop_var, int factor,
                    bool assume_divisible = false);

}  // namespace augem::transform
