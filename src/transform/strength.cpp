#include "transform/strength.hpp"

#include <map>
#include <utility>
#include <vector>

#include "ir/affine.hpp"
#include "ir/visit.hpp"
#include "support/error.hpp"

namespace augem::transform {

using namespace augem::ir;

namespace {

/// One cursor introduced for a (base, subscript-family) group.
struct Cursor {
  std::string name;      // the new pointer local
  std::string base;      // original array
  Poly shape;            // subscript without its constant part
  Poly increment;        // coeff(v) * step
  Poly init_index;       // shape with v := lower
};

/// Group key: array base plus the canonical non-constant subscript part.
struct GroupKey {
  std::string base;
  std::string shape_repr;
  bool operator<(const GroupKey& o) const {
    return std::tie(base, shape_repr) < std::tie(o.base, o.shape_repr);
  }
};

StmtList process(StmtList stmts, Kernel& kernel);

/// Strength-reduces one loop in place; returns the cursor-init statements
/// to be placed immediately before it.
StmtList reduce_loop(ForStmt& loop, Kernel& kernel) {
  const std::string& v = loop.var();

  // The loop lower bound as a polynomial (0, or the counter itself for
  // remainder loops that continue from the main loop's final value).
  const auto lower_poly = to_poly(loop.lower());
  if (!lower_poly) return {};

  // Discover subscript groups that vary linearly with v.
  std::map<GroupKey, Cursor> cursors;
  for_each_expr(loop.body(), [&](const Expr& e) {
    const auto* ref = as<ArrayRef>(e);
    if (ref == nullptr) return;
    const auto poly = to_poly(ref->index());
    if (!poly) return;
    const auto coeff = poly->coefficient_of(v);
    if (!coeff || coeff->terms().empty()) return;  // not linear / invariant
    const Poly shape = poly->without_constant();
    const GroupKey key{ref->base(), shape.to_expr()->to_string()};
    if (cursors.count(key) > 0) return;
    Cursor c;
    c.name = kernel.fresh_name("ptr_" + ref->base());
    c.base = ref->base();
    c.shape = shape;
    c.increment = *coeff * Poly::constant(loop.step());
    c.init_index = shape.substitute(v, *lower_poly);
    cursors.emplace(key, std::move(c));
  });
  if (cursors.empty()) return {};

  for (const auto& [key, c] : cursors)
    kernel.declare_local(c.name, ScalarType::kPtrF64);

  // Rewrite matching references to cursor[constant].
  StmtList body = rewrite_stmts(loop.body(), [&](const Expr& e) -> ExprPtr {
    const auto* ref = as<ArrayRef>(e);
    if (ref == nullptr) return nullptr;
    const auto poly = to_poly(ref->index());
    if (!poly) return nullptr;
    const GroupKey key{ref->base(), poly->without_constant().to_expr()->to_string()};
    const auto it = cursors.find(key);
    if (it == cursors.end()) return nullptr;
    return arr(it->second.name, ival(poly->constant_part()));
  });

  // Append the per-iteration cursor advances.
  for (const auto& [key, c] : cursors)
    body.push_back(assign(var(c.name), add(var(c.name), c.increment.to_expr())));
  loop.mutable_body() = std::move(body);

  // Build the init statements `ptr = base + shape(v := lower)`.
  StmtList inits;
  for (const auto& [key, c] : cursors) {
    ExprPtr addr = c.init_index.terms().empty()
                       ? var(c.base)
                       : add(var(c.base), c.init_index.to_expr());
    inits.push_back(assign(var(c.name), std::move(addr)));
  }
  return inits;
}

StmtList process(StmtList stmts, Kernel& kernel) {
  StmtList out;
  for (StmtPtr& s : stmts) {
    if (auto* loop = as_mutable<ForStmt>(*s)) {
      // Innermost-first: reduce nested loops before this one so that this
      // level only sees subscripts varying with its own counter.
      loop->mutable_body() = process(std::move(loop->mutable_body()), kernel);
      StmtList inits = reduce_loop(*loop, kernel);
      for (StmtPtr& init : inits) out.push_back(std::move(init));
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

void strength_reduce(ir::Kernel& kernel) {
  kernel.mutable_body() = process(std::move(kernel.mutable_body()), kernel);
}

}  // namespace augem::transform
