#pragma once
// SysV x86-64 ABI mapping for generated kernel functions.
//
// Kernel parameters (ir::Param order) are classified INTEGER (long,
// double*) or SSE (double) and assigned rdi/rsi/rdx/rcx/r8/r9 + stack,
// resp. xmm0-7 — matching how the C/C++ drivers will call the JIT-compiled
// functions through ordinary function pointers.

#include <cstdint>
#include <vector>

#include "ir/kernel.hpp"
#include "opt/regs.hpp"

namespace augem::asmgen {

/// Where one parameter arrives at function entry.
struct ArgLocation {
  std::string name;
  ir::ScalarType type;
  bool in_register = true;
  opt::Gpr gpr = opt::Gpr::kNoGpr;   ///< INTEGER-class register args
  opt::Vr vr = opt::Vr::kNoVr;      ///< SSE-class register args
  /// Stack args: byte offset from entry rsp (return address at 0).
  std::int32_t entry_stack_offset = 0;
};

/// Computes the ABI locations of every kernel parameter, in order.
std::vector<ArgLocation> classify_arguments(const ir::Kernel& kernel);

}  // namespace augem::asmgen
