#include "asmgen/printer.hpp"

#include <sstream>

#include "support/error.hpp"

namespace augem::asmgen {

using namespace augem::opt;

namespace {

std::string mem_str(const Mem& m) {
  AUGEM_CHECK(m.valid(), "invalid memory operand");
  std::ostringstream os;
  if (m.disp != 0) os << m.disp;
  os << "(%" << gpr_name(m.base);
  if (m.has_index())
    os << ",%" << gpr_name(m.index) << "," << static_cast<int>(m.scale);
  os << ")";
  return os.str();
}

std::string vreg(Vr v, int width) { return std::string("%") + vr_name(v, width); }
std::string greg(Gpr g) { return std::string("%") + gpr_name(g); }

/// pd/sd suffix by width.
const char* fp_suffix(int width) { return width == 1 ? "sd" : "pd"; }

std::string two_or_three(const char* sse_op, const MInst& i) {
  std::ostringstream os;
  if (!i.vex) {
    AUGEM_CHECK(i.vdst == i.vsrc1,
                "two-operand SSE form requires dst == src1 for " << sse_op);
    os << sse_op << fp_suffix(i.width) << " " << vreg(i.vsrc2, i.width) << ", "
       << vreg(i.vdst, i.width);
  } else {
    os << "v" << sse_op << fp_suffix(i.width) << " " << vreg(i.vsrc2, i.width)
       << ", " << vreg(i.vsrc1, i.width) << ", " << vreg(i.vdst, i.width);
  }
  return os.str();
}

std::string imm_str(std::int64_t v) { return "$" + std::to_string(v); }

}  // namespace

std::string print_inst(const MInst& i) {
  std::ostringstream os;
  switch (i.op) {
    case MOp::kVZero: {
      const std::string d = vreg(i.vdst, i.width);
      return i.vex ? "vxorpd " + d + ", " + d + ", " + d : "xorpd " + d + ", " + d;
    }
    case MOp::kVLoad:
      os << (i.vex ? "v" : "") << "mov" << (i.width == 1 ? "sd" : "upd") << " "
         << mem_str(i.mem) << ", " << vreg(i.vdst, i.width);
      return os.str();
    case MOp::kVStore:
      os << (i.vex ? "v" : "") << "mov" << (i.width == 1 ? "sd" : "upd") << " "
         << vreg(i.vsrc1, i.width) << ", " << mem_str(i.mem);
      return os.str();
    case MOp::kVBroadcast:
      AUGEM_CHECK(i.width >= 2, "broadcast width");
      if (i.width == 2) {
        os << (i.vex ? "vmovddup " : "movddup ") << mem_str(i.mem) << ", "
           << vreg(i.vdst, 2);
      } else {
        AUGEM_CHECK(i.vex, "256-bit broadcast requires VEX");
        os << "vbroadcastsd " << mem_str(i.mem) << ", " << vreg(i.vdst, 4);
      }
      return os.str();
    case MOp::kVMov:
      os << (i.vex ? "vmovapd " : "movapd ") << vreg(i.vsrc1, i.width) << ", "
         << vreg(i.vdst, i.width);
      return os.str();
    case MOp::kVMul:
      return two_or_three("mul", i);
    case MOp::kVAdd:
      return two_or_three("add", i);
    case MOp::kVMax:
      return two_or_three("max", i);
    case MOp::kVFma231:
      // dst = src1*src2 + dst (Intel VFMADD231 dst, src1, src2).
      os << "vfmadd231" << fp_suffix(i.width) << " " << vreg(i.vsrc2, i.width)
         << ", " << vreg(i.vsrc1, i.width) << ", " << vreg(i.vdst, i.width);
      return os.str();
    case MOp::kVFma4:
      // dst = src1*src2 + src3 (AMD VFMADDPD dst, src1, src2, src3).
      os << "vfmadd" << fp_suffix(i.width) << " " << vreg(i.vsrc3, i.width)
         << ", " << vreg(i.vsrc2, i.width) << ", " << vreg(i.vsrc1, i.width)
         << ", " << vreg(i.vdst, i.width);
      return os.str();
    case MOp::kVShuf:
      if (!i.vex) {
        AUGEM_CHECK(i.vdst == i.vsrc1, "shufpd requires dst == src1");
        os << "shufpd " << imm_str(i.imm) << ", " << vreg(i.vsrc2, i.width)
           << ", " << vreg(i.vdst, i.width);
      } else {
        os << "vshufpd " << imm_str(i.imm) << ", " << vreg(i.vsrc2, i.width)
           << ", " << vreg(i.vsrc1, i.width) << ", " << vreg(i.vdst, i.width);
      }
      return os.str();
    case MOp::kVPerm128:
      os << "vperm2f128 " << imm_str(i.imm) << ", " << vreg(i.vsrc2, 4) << ", "
         << vreg(i.vsrc1, 4) << ", " << vreg(i.vdst, 4);
      return os.str();
    case MOp::kVBlend:
      if (!i.vex) {
        AUGEM_CHECK(i.vdst == i.vsrc1, "blendpd requires dst == src1");
        os << "blendpd " << imm_str(i.imm) << ", " << vreg(i.vsrc2, i.width)
           << ", " << vreg(i.vdst, i.width);
      } else {
        os << "vblendpd " << imm_str(i.imm) << ", " << vreg(i.vsrc2, i.width)
           << ", " << vreg(i.vsrc1, i.width) << ", " << vreg(i.vdst, i.width);
      }
      return os.str();
    case MOp::kVExtractHigh:
      os << "vextractf128 $1, " << vreg(i.vsrc1, 4) << ", " << vreg(i.vdst, 2);
      return os.str();
    case MOp::kFLoad:
      os << (i.vex ? "vmovsd " : "movsd ") << mem_str(i.mem) << ", "
         << vreg(i.vdst, 1);
      return os.str();
    case MOp::kFStore:
      os << (i.vex ? "vmovsd " : "movsd ") << vreg(i.vsrc1, 1) << ", "
         << mem_str(i.mem);
      return os.str();

    case MOp::kIMovImm:
      os << "movabsq " << imm_str(i.imm) << ", " << greg(i.gdst);
      return os.str();
    case MOp::kIMov:
      os << "movq " << greg(i.gsrc) << ", " << greg(i.gdst);
      return os.str();
    case MOp::kIAdd:
      os << "addq " << greg(i.gsrc) << ", " << greg(i.gdst);
      return os.str();
    case MOp::kIAddImm:
      os << "addq " << imm_str(i.imm) << ", " << greg(i.gdst);
      return os.str();
    case MOp::kISub:
      os << "subq " << greg(i.gsrc) << ", " << greg(i.gdst);
      return os.str();
    case MOp::kISubImm:
      os << "subq " << imm_str(i.imm) << ", " << greg(i.gdst);
      return os.str();
    case MOp::kIMul:
      os << "imulq " << greg(i.gsrc) << ", " << greg(i.gdst);
      return os.str();
    case MOp::kIMulImm:
      os << "imulq " << imm_str(i.imm) << ", " << greg(i.gsrc) << ", "
         << greg(i.gdst);
      return os.str();
    case MOp::kIShlImm:
      os << "salq " << imm_str(i.imm) << ", " << greg(i.gdst);
      return os.str();
    case MOp::kINeg:
      os << "negq " << greg(i.gdst);
      return os.str();
    case MOp::kILoad:
      os << "movq " << mem_str(i.mem) << ", " << greg(i.gdst);
      return os.str();
    case MOp::kIStore:
      os << "movq " << greg(i.gsrc) << ", " << mem_str(i.mem);
      return os.str();
    case MOp::kIAddMem:
      os << "addq " << mem_str(i.mem) << ", " << greg(i.gdst);
      return os.str();
    case MOp::kISubMem:
      os << "subq " << mem_str(i.mem) << ", " << greg(i.gdst);
      return os.str();
    case MOp::kIMulMem:
      os << "imulq " << mem_str(i.mem) << ", " << greg(i.gdst);
      return os.str();
    case MOp::kLea:
      os << "leaq " << mem_str(i.mem) << ", " << greg(i.gdst);
      return os.str();

    case MOp::kCmp:
      os << "cmpq " << greg(i.gsrc) << ", " << greg(i.gdst);
      return os.str();
    case MOp::kCmpImm:
      os << "cmpq " << imm_str(i.imm) << ", " << greg(i.gdst);
      return os.str();
    case MOp::kJl:
      return "jl " + i.label;
    case MOp::kJge:
      return "jge " + i.label;
    case MOp::kJne:
      return "jne " + i.label;
    case MOp::kJe:
      return "je " + i.label;
    case MOp::kJmp:
      return "jmp " + i.label;
    case MOp::kLabel:
      return i.label + ":";
    case MOp::kPrefetch: {
      const char* op = i.imm >= 3   ? "prefetcht0"
                       : i.imm == 2 ? "prefetcht1"
                       : i.imm == 1 ? "prefetcht2"
                                    : "prefetchnta";
      return std::string(op) + " " + mem_str(i.mem);
    }
    case MOp::kPush:
      return "pushq " + greg(i.gsrc);
    case MOp::kPop:
      return "popq " + greg(i.gdst);
    case MOp::kVZeroUpper:
      return "vzeroupper";
    case MOp::kRet:
      return "ret";
    case MOp::kComment:
      return "# " + i.label;
  }
  AUGEM_FAIL("unhandled machine op");
}

std::string print_function(const std::string& name, const MInstList& insts) {
  std::ostringstream os;
  os << "\t.text\n"
     << "\t.globl " << name << "\n"
     << "\t.type " << name << ", @function\n"
     << name << ":\n";
  for (const MInst& inst : insts) {
    const std::string line = print_inst(inst);
    if (inst.op == MOp::kLabel) {
      os << line << "\n";
    } else {
      os << "\t" << line << "\n";
    }
  }
  os << "\t.size " << name << ", .-" << name << "\n";
  return os.str();
}

}  // namespace augem::asmgen
