#pragma once
// AT&T-syntax x86-64 rendering of the machine IR.
//
// The output of `print_function` is a complete assembly translation unit
// accepted by the GNU assembler; jit/ feeds it to the system toolchain to
// produce executable kernels.

#include <string>

#include "opt/minst.hpp"

namespace augem::asmgen {

/// Renders one machine instruction as a line of AT&T assembly (no trailing
/// newline). Enforces the two-operand constraints of non-VEX encodings.
std::string print_inst(const opt::MInst& inst);

/// Renders a full function: directives, label, body, size footer.
std::string print_function(const std::string& name, const opt::MInstList& insts);

}  // namespace augem::asmgen
