#pragma once
// The Assembly Kernel Generator (paper §2.4): translates a
// template-annotated low-level C kernel into a complete x86-64 function.
//
// Tagged regions are compiled by the Template Optimizer (opt/optimizers);
// the remaining low-level C — loop control, pointer/cursor arithmetic,
// prefetches, stray scalar statements — is translated "in a straightforward
// fashion" here. The reg_table keeps vector-register assignments consistent
// across both worlds; integer variables get register homes by loop-depth
// priority with stack-slot spilling for the overflow.

#include <string>
#include <vector>

#include "analysis/contract.hpp"
#include "ir/kernel.hpp"
#include "opt/optimizers.hpp"
#include "opt/plan.hpp"

namespace augem::asmgen {

/// A fully generated kernel: assembly text for the JIT, machine IR for the
/// VM, and frame metadata for tests.
struct GeneratedKernel {
  std::string name;
  std::string asm_text;       ///< complete AT&T translation unit
  opt::MInstList insts;       ///< prologue + body + epilogue
  opt::OptConfig config;
  int frame_bytes = 0;
  std::vector<opt::Gpr> saved_gprs;
  ir::Kernel source;          ///< the tagged low-level C it was built from
};

/// Runs the full machine-level pipeline on an optimized low-level C kernel:
/// template identification, vectorization planning, template optimization,
/// global translation, optional scheduling, and printing. The result is
/// statically analyzed (analysis/analyzer.hpp) before it is returned; with a
/// contract the analyzer additionally proves every memory access in bounds.
/// The kernel is taken by value: identification tags its statements.
GeneratedKernel generate_assembly(ir::Kernel kernel, const opt::OptConfig& config,
                                  const analysis::KernelContract* contract = nullptr);

}  // namespace augem::asmgen
