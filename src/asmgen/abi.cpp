#include "asmgen/abi.hpp"

#include "support/error.hpp"

namespace augem::asmgen {

using opt::Gpr;
using opt::Vr;

std::vector<ArgLocation> classify_arguments(const ir::Kernel& kernel) {
  static constexpr Gpr kIntArgRegs[6] = {Gpr::rdi, Gpr::rsi, Gpr::rdx,
                                         Gpr::rcx, Gpr::r8, Gpr::r9};
  static constexpr Vr kSseArgRegs[8] = {Vr::v0, Vr::v1, Vr::v2, Vr::v3,
                                        Vr::v4, Vr::v5, Vr::v6, Vr::v7};
  std::vector<ArgLocation> out;
  int next_int = 0;
  int next_sse = 0;
  std::int32_t next_stack = 8;  // 0 is the return address
  for (const ir::Param& p : kernel.params()) {
    ArgLocation loc;
    loc.name = p.name;
    loc.type = p.type;
    if (p.type == ir::ScalarType::kF64) {
      AUGEM_CHECK(next_sse < 8, "too many floating-point parameters");
      loc.vr = kSseArgRegs[next_sse++];
    } else if (next_int < 6) {
      loc.gpr = kIntArgRegs[next_int++];
    } else {
      loc.in_register = false;
      loc.entry_stack_offset = next_stack;
      next_stack += 8;
    }
    out.push_back(loc);
  }
  return out;
}

}  // namespace augem::asmgen
