#include "asmgen/codegen.hpp"

#include <algorithm>
#include <cstdlib>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "analysis/analyzer.hpp"
#include "asmgen/abi.hpp"
#include "asmgen/printer.hpp"
#include "ir/visit.hpp"
#include "opt/schedule.hpp"
#include "support/error.hpp"

namespace augem::asmgen {

using namespace augem::ir;
using namespace augem::opt;

namespace {

/// Where an integer/pointer variable lives during the function body.
struct Home {
  bool in_reg = false;
  Gpr reg = Gpr::kNoGpr;
  int slot = -1;  ///< always valid: every variable owns a frame slot
};

/// Registers handed to integer variables, ordered caller-saved first so
/// small kernels avoid pushes. r10/r11 are reserved as statement scratch.
constexpr Gpr kAllocatableGprs[] = {
    Gpr::rdi, Gpr::rsi, Gpr::rdx, Gpr::rcx, Gpr::r8,  Gpr::r9, Gpr::rax,
    Gpr::rbx, Gpr::rbp, Gpr::r12, Gpr::r13, Gpr::r14, Gpr::r15};
constexpr Gpr kScratch0 = Gpr::r10;
constexpr Gpr kScratch1 = Gpr::r11;

class CodeGenerator {
 public:
  CodeGenerator(ir::Kernel kernel, const OptConfig& config,
                const analysis::KernelContract* contract)
      : kernel_(std::move(kernel)), config_(config), contract_(contract) {
    match_ = match::identify_templates(kernel_);
    plan_ = plan_vectorization(match_, config_);
  }

  GeneratedKernel run() {
    assign_bound_names();
    collect_stride_hoists();
    assign_homes();
    init_vector_world();
    emit_prologue();
    emit_stmts(kernel_.body());
    emit_epilogue();

    if (config_.schedule) schedule_instructions(out_);

    // Every generated kernel is statically analyzed before leaving the
    // generator (operand completeness, encoding constraints, frame and
    // flags discipline, path-sensitive initialization — and, when the
    // caller supplies a contract, symbolic memory-bounds proofs).
    int f64_params = 0;
    for (const Param& p : kernel_.params())
      if (p.type == ScalarType::kF64) ++f64_params;
    analysis::AnalyzeOptions aopts;
    aopts.num_f64_params = f64_params;
    aopts.contract = contract_;
    analysis::check_clean(analysis::analyze(out_, aopts), out_);

    std::string text = print_function(kernel_.name(), out_);
    return GeneratedKernel{kernel_.name(),  std::move(text),
                           std::move(out_), config_,
                           frame_bytes_,    saved_,
                           std::move(kernel_)};
  }

 private:
  // ---- pre-passes ----------------------------------------------------------

  /// Names a hoisted loop-bound variable for every loop whose upper bound
  /// is neither a constant nor a plain variable.
  void assign_bound_names() {
    int counter = 0;
    for_each_stmt(kernel_.body(), [&](const Stmt& s) {
      const auto* loop = ir::as<ForStmt>(s);
      if (loop == nullptr) return;
      if (loop->upper().kind() == ExprKind::kIntConst) return;
      if (loop->upper().kind() == ExprKind::kVarRef) return;
      bound_name_[loop] = "bound$" + loop->var() + std::to_string(counter++);
    });
  }

  /// Finds cursor self-advances by a loop-invariant variable stride
  /// (`ptr = ptr + nc`). The byte stride (nc*8) is hoisted into a synthetic
  /// variable computed once in the prologue, turning each advance into a
  /// single add — the hot inner loops execute these every iteration.
  void collect_stride_hoists() {
    std::function<void(const StmtList&, int)> walk = [&](const StmtList& body,
                                                         int depth) {
      for (const StmtPtr& s : body) {
        if (const auto* loop = ir::as<ForStmt>(*s)) {
          walk(loop->body(), depth + 1);
          continue;
        }
        const auto* a = ir::as<Assign>(*s);
        if (a == nullptr) continue;
        const auto* dst = ir::as<VarRef>(a->lhs());
        if (dst == nullptr ||
            kernel_.type_of(dst->name()) != ScalarType::kPtrF64)
          continue;
        const auto* b = ir::as<Binary>(a->rhs());
        if (b == nullptr || b->op() != BinOp::kAdd) continue;
        const auto* base = ir::as<VarRef>(b->lhs());
        const auto* addend = ir::as<VarRef>(b->rhs());
        if (base == nullptr || addend == nullptr) continue;
        if (base->name() != dst->name()) continue;
        stride_weight_["stride$" + addend->name()] += std::pow(4.0, depth);
        stride_source_["stride$" + addend->name()] = addend->name();
      }
    };
    walk(kernel_.body(), 0);
  }

  /// Computes loop-depth-weighted use counts and assigns register homes.
  void assign_homes() {
    std::map<std::string, double> weight;

    // Arrays referenced inside template regions must be register-resident
    // (their memory operands are formed without scratch): give them an
    // overwhelming weight.
    for (const match::Region& region : match_.regions) {
      auto touch = [&](const std::string& arr) { weight[arr] += 1e9; };
      for (const auto& m : region.mm) {
        touch(m.arr_a);
        touch(m.arr_b);
      }
      for (const auto& m : region.mv) {
        touch(m.arr_a);
        touch(m.arr_b);
      }
      for (const auto& st : region.stores) touch(st.arr);
      for (const auto& st : region.epis) {
        touch(st.arr);
        if (st.bias) touch(st.bias_arr);
      }
    }

    std::function<void(const StmtList&, int)> walk = [&](const StmtList& body,
                                                         int depth) {
      const double w = std::pow(4.0, depth);
      for (const StmtPtr& s : body) {
        if (const auto* loop = ir::as<ForStmt>(*s)) {
          weight[loop->var()] += 4.0 * w;  // touched every iteration
          const auto bn = bound_name_.find(loop);
          if (bn != bound_name_.end()) {
            weight[bn->second] += 4.0 * w;
          } else if (const auto* v = ir::as<VarRef>(loop->upper())) {
            weight[v->name()] += 4.0 * w;  // compared every iteration
          }
          count_expr(loop->lower(), w, weight);
          walk(loop->body(), depth + 1);
          continue;
        }
        if (const auto* a = ir::as<Assign>(*s)) {
          count_expr(a->lhs(), w, weight);
          count_expr(a->rhs(), w, weight);
        } else if (const auto* p = ir::as<Prefetch>(*s)) {
          weight[p->base()] += w;
        }
      }
    };
    walk(kernel_.body(), 0);

    // Every integer/pointer variable (incl. synthetic bounds) gets a slot;
    // the heaviest get registers.
    std::vector<std::pair<double, std::string>> ranked;
    auto add_candidate = [&](const std::string& name) {
      const auto it = weight.find(name);
      ranked.push_back({it == weight.end() ? 0.0 : it->second, name});
    };
    for (const Param& p : kernel_.params())
      if (p.type != ScalarType::kF64) add_candidate(p.name);
    for (const Local& l : kernel_.locals())
      if (l.type != ScalarType::kF64) add_candidate(l.name);
    for (const auto& [loop, name] : bound_name_) add_candidate(name);
    for (const auto& [name, w] : stride_weight_) {
      weight[name] = w;
      add_candidate(name);
    }

    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) { return a.first > b.first; });

    if (std::getenv("AUGEM_DEBUG_HOMES") != nullptr) {
      for (const auto& [w, name] : ranked)
        std::fprintf(stderr, "home candidate %-16s weight %g\n", name.c_str(), w);
    }
    std::size_t next_reg = 0;
    for (const auto& [w, name] : ranked) {
      Home h;
      h.slot = next_slot_++;
      if (next_reg < std::size(kAllocatableGprs)) {
        h.in_reg = true;
        h.reg = kAllocatableGprs[next_reg++];
      }
      homes_[name] = h;
    }

    // F64 frame slots: every double parameter (the broadcast source) plus
    // any broadcast scalar loaded from memory is re-broadcast from its
    // original location, so only params need slots.
    for (const Param& p : kernel_.params())
      if (p.type == ScalarType::kF64) f64_slot_[p.name] = next_slot_++;

    frame_bytes_ = 8 * next_slot_;

    for (const auto& [name, h] : homes_)
      if (h.in_reg && is_callee_saved(h.reg)) saved_.push_back(h.reg);
    std::sort(saved_.begin(), saved_.end());
    saved_.erase(std::unique(saved_.begin(), saved_.end()), saved_.end());
  }

  static void count_expr(const Expr& e, double w,
                         std::map<std::string, double>& weight) {
    if (const auto* v = ir::as<VarRef>(e)) {
      weight[v->name()] += w;
    } else if (const auto* a = ir::as<ArrayRef>(e)) {
      weight[a->base()] += w;
      count_expr(a->index(), w, weight);
    } else if (const auto* b = ir::as<Binary>(e)) {
      count_expr(b->lhs(), w, weight);
      count_expr(b->rhs(), w, weight);
    }
  }

  void init_vector_world() {
    // Reserve the SSE argument registers holding F64 parameters.
    std::vector<Vr> reserved;
    for (const ArgLocation& arg : classify_arguments(kernel_))
      if (arg.type == ScalarType::kF64) reserved.push_back(arg.vr);

    std::vector<std::string> affinities;
    for (const match::Region& region : match_.regions) {
      auto touch = [&](const std::string& arr) {
        if (std::find(affinities.begin(), affinities.end(), arr) ==
            affinities.end())
          affinities.push_back(arr);
      };
      for (const auto& m : region.mm) {
        touch(m.arr_a);
        touch(m.arr_b);
      }
      for (const auto& m : region.mv) {
        touch(m.arr_a);
        touch(m.arr_b);
      }
      for (const auto& st : region.stores) touch(st.arr);
      for (const auto& st : region.epis) {
        touch(st.arr);
        if (st.bias) touch(st.bias_arr);
      }
    }
    vralloc_ = std::make_unique<VrAllocator>(affinities, config_.regalloc,
                                             reserved);

    ctx_.config = config_;
    ctx_.plan = plan_;
    ctx_.match = &match_;
    ctx_.vralloc = vralloc_.get();
    ctx_.out = &out_;
    ctx_.mem_of = [this](const std::string& array, std::int64_t off) {
      return mem_of(array, off);
    };
    compute_store_affinities(ctx_);
  }

  // ---- frame / operand helpers ---------------------------------------------

  Mem slot_mem(int slot) const { return mem_bd(Gpr::rsp, 8 * slot); }

  const Home& home(const std::string& name) const {
    const auto it = homes_.find(name);
    AUGEM_CHECK(it != homes_.end(), "no home for variable '" << name << "'");
    return it->second;
  }

  /// Ensures `name`'s value is in a register; returns it. Spilled variables
  /// are loaded into `scratch`.
  Gpr read_var(const std::string& name, Gpr scratch) {
    const Home& h = home(name);
    if (h.in_reg) return h.reg;
    out_.push_back(iload(scratch, slot_mem(h.slot)));
    return scratch;
  }

  Mem mem_of(const std::string& array, std::int64_t elem_off) {
    AUGEM_CHECK(elem_off * 8 <= INT32_MAX && elem_off * 8 >= INT32_MIN,
                "displacement overflow");
    const Home& h = home(array);
    if (h.in_reg) return mem_bd(h.reg, static_cast<std::int32_t>(elem_off * 8));
    // Cold (spilled) base: load it into a scratch register. Scratches
    // alternate so a caller may hold two live memory operands at once
    // (e.g. the mv optimizer's load/compute/store against two arrays).
    const Gpr scratch = mem_scratch_toggle_ ? kScratch1 : kScratch0;
    mem_scratch_toggle_ = !mem_scratch_toggle_;
    out_.push_back(iload(scratch, slot_mem(h.slot)));
    return mem_bd(scratch, static_cast<std::int32_t>(elem_off * 8));
  }

  // ---- prologue / epilogue ---------------------------------------------------

  void emit_prologue() {
    out_.push_back(comment("prologue: " + config_summary()));
    for (Gpr g : saved_) out_.push_back(push(g));
    if (frame_bytes_ > 0) out_.push_back(isub_imm(Gpr::rsp, frame_bytes_));

    const auto args = classify_arguments(kernel_);
    // Phase 1: spill every integer parameter to its slot (arg registers may
    // be reused as homes of other variables).
    for (const ArgLocation& arg : args) {
      if (arg.type == ScalarType::kF64) continue;
      const Home& h = home(arg.name);
      if (arg.in_register) {
        out_.push_back(istore(arg.gpr, slot_mem(h.slot)));
      } else {
        // Stack argument: entry offset shifted by our pushes and frame.
        const std::int32_t disp = frame_bytes_ +
                                  8 * static_cast<std::int32_t>(saved_.size()) +
                                  arg.entry_stack_offset;
        out_.push_back(iload(kScratch0, mem_bd(Gpr::rsp, disp)));
        out_.push_back(istore(kScratch0, slot_mem(h.slot)));
      }
    }
    // Phase 2: load register-resident variables from their slots.
    for (const ArgLocation& arg : args) {
      if (arg.type == ScalarType::kF64) continue;
      const Home& h = home(arg.name);
      if (h.in_reg) out_.push_back(iload(h.reg, slot_mem(h.slot)));
    }
    // Hoisted byte strides: stride$v = v * 8, computed once.
    for (const auto& [name, src] : stride_source_) {
      const Home& h = home(name);
      const Gpr target = h.in_reg ? h.reg : kScratch0;
      const Gpr v = read_var(src, target);
      if (v != target) out_.push_back(imov(target, v));
      out_.push_back(ishl_imm(target, 3));
      if (!h.in_reg) out_.push_back(istore(target, slot_mem(h.slot)));
    }
    // F64 parameters: bind in the reg_table (pinned); store to the frame
    // and broadcast when the plan requires a SIMD copy.
    for (const ArgLocation& arg : args) {
      if (arg.type != ScalarType::kF64) continue;
      ctx_.reg_table.bind(arg.name, arg.vr);
      ctx_.pinned_scalars.insert(arg.name);
      const Mem slot = slot_mem(f64_slot_.at(arg.name));
      out_.push_back(fstore(arg.vr, slot, isa_is_vex(config_.isa)));
      if (plan_.broadcast_scals.count(arg.name) > 0) {
        const Vr bc = vralloc_->alloc("");
        ctx_.broadcast_reg[arg.name] = bc;
        emit_broadcast(out_, config_.isa, isa_vector_doubles(config_.isa), bc,
                       slot);
      }
    }
  }

  void emit_epilogue() {
    // Returning to SSE-encoded caller code with dirty upper YMM state costs
    // AVX-SSE transition penalties on every call; clear it.
    if (isa_vector_bits(config_.isa) == 256) out_.push_back(opt::vzeroupper());
    if (kernel_.return_var()) {
      const std::string& res = *kernel_.return_var();
      AUGEM_CHECK(ctx_.reg_table.contains(res),
                  "return value '" << res << "' has no register");
      const Vr r = ctx_.reg_table.lookup(res);
      if (r != Vr::v0)
        out_.push_back(vmov(Vr::v0, r, 1, isa_is_vex(config_.isa)));
    }
    if (frame_bytes_ > 0) out_.push_back(iadd_imm(Gpr::rsp, frame_bytes_));
    for (auto it = saved_.rbegin(); it != saved_.rend(); ++it)
      out_.push_back(pop(*it));
    out_.push_back(ret());
  }

  std::string config_summary() const {
    std::string s = kernel_.name();
    s += " [";
    s += isa_name(config_.isa);
    s += ", ";
    s += vec_strategy_name(config_.strategy);
    s += "]";
    return s;
  }

  // ---- statement lowering ----------------------------------------------------

  void emit_stmts(const StmtList& body) {
    std::size_t p = 0;
    while (p < body.size()) {
      const Stmt& s = *body[p];
      if (!s.template_tag().empty()) {
        const int rid = s.region_id();
        emit_region(ctx_, match_.regions[static_cast<std::size_t>(rid)]);
        while (p < body.size() && body[p]->region_id() == rid) ++p;
        continue;
      }
      switch (s.kind()) {
        case StmtKind::kFor:
          emit_loop(*ir::as<ForStmt>(s));
          break;
        case StmtKind::kAssign:
          emit_assign(*ir::as<Assign>(s));
          break;
        case StmtKind::kPrefetch: {
          const auto& pf = *ir::as<Prefetch>(s);
          const auto* off = ir::as<IntConst>(pf.index());
          AUGEM_CHECK(off != nullptr, "prefetch index must be constant");
          out_.push_back(
              opt::prefetch(mem_of(pf.base(), off->value()),
                            static_cast<int>(pf.locality())));
          break;
        }
      }
      ++p;
    }
  }

  void emit_loop(const ForStmt& loop) {
    const std::string body_label = fresh_label("body_" + loop.var());
    const std::string end_label = fresh_label("end_" + loop.var());

    // Counter init (skipped for remainder loops continuing their counter).
    const auto* self = ir::as<VarRef>(loop.lower());
    if (self == nullptr || self->name() != loop.var())
      assign_int(loop.var(), loop.lower());

    // Bound: constant, plain variable, or hoisted synthetic.
    std::optional<std::int64_t> const_bound;
    std::string bound_var;
    if (const auto* c = ir::as<IntConst>(loop.upper())) {
      const_bound = c->value();
    } else if (const auto* v = ir::as<VarRef>(loop.upper())) {
      bound_var = v->name();
    } else {
      bound_var = bound_name_.at(&loop);
      assign_int(bound_var, loop.upper());
    }

    auto emit_compare = [&]() {
      const Gpr v = read_var(loop.var(), kScratch0);
      if (const_bound) {
        out_.push_back(cmp_imm(v, *const_bound));
      } else {
        const Gpr b = read_var(bound_var, kScratch1);
        out_.push_back(cmp(v, b));
      }
    };

    emit_compare();
    out_.push_back(jge(end_label));
    out_.push_back(opt::label(body_label));
    emit_stmts(loop.body());
    increment_var(loop.var(), loop.step());
    emit_compare();
    out_.push_back(jl(body_label));
    out_.push_back(opt::label(end_label));

    // Shared accumulators whose vectorized regions sat inside this loop are
    // reduced back to scalars right here (before any remainder loop).
    if (!ctx_.pending_reductions.empty()) emit_pending_reductions(ctx_);
  }

  void increment_var(const std::string& name, std::int64_t step) {
    const Home& h = home(name);
    if (h.in_reg) {
      out_.push_back(iadd_imm(h.reg, step));
      return;
    }
    out_.push_back(iload(kScratch0, slot_mem(h.slot)));
    out_.push_back(iadd_imm(kScratch0, step));
    out_.push_back(istore(kScratch0, slot_mem(h.slot)));
  }

  void emit_assign(const Assign& a) {
    // F64 world?
    if (const auto* dst = ir::as<VarRef>(a.lhs())) {
      const ScalarType t = kernel_.type_of(dst->name());
      if (t == ScalarType::kF64) {
        emit_f64_assign(dst->name(), a.rhs());
        return;
      }
      if (t == ScalarType::kPtrF64) {
        emit_ptr_assign(dst->name(), a.rhs());
        return;
      }
      assign_int(dst->name(), a.rhs());
      return;
    }
    // Untagged store: arr[c] = scalar.
    const auto* ref = ir::as<ArrayRef>(a.lhs());
    AUGEM_CHECK(ref != nullptr, "bad assignment target");
    const auto* off = ir::as<IntConst>(ref->index());
    const auto* src = ir::as<VarRef>(a.rhs());
    AUGEM_CHECK(off != nullptr && src != nullptr,
                "untagged store must be three-address: " << a.to_string(0));
    emit_store(out_, config_.isa, 1, ctx_.reg_table.lookup(src->name()),
               mem_of(ref->base(), off->value()));
  }

  // Untagged scalar F64 statements (e.g. GEMV's `scal = x[i]` load).
  void emit_f64_assign(const std::string& dst, const Expr& rhs) {
    const Vr r = ctx_.reg_table.contains(dst) ? ctx_.reg_table.lookup(dst)
                                              : ctx_.scalar(dst);
    if (const auto* ref = ir::as<ArrayRef>(rhs)) {
      const auto* off = ir::as<IntConst>(ref->index());
      AUGEM_CHECK(off != nullptr, "F64 load index must be constant after "
                                  "strength reduction: " << rhs.to_string());
      const Mem m = mem_of(ref->base(), off->value());
      emit_load(out_, config_.isa, 1, r, m);
      if (plan_.broadcast_scals.count(dst) > 0) {
        auto it = ctx_.broadcast_reg.find(dst);
        if (it == ctx_.broadcast_reg.end())
          it = ctx_.broadcast_reg.emplace(dst, vralloc_->alloc("")).first;
        emit_broadcast(out_, config_.isa, isa_vector_doubles(config_.isa),
                       it->second, m);
      }
      return;
    }
    if (const auto* c = ir::as<FloatConst>(rhs)) {
      AUGEM_CHECK(c->value() == 0.0,
                  "only 0.0 literals are materializable, got " << c->value());
      emit_zero(out_, config_.isa, 1, r);
      return;
    }
    if (const auto* v = ir::as<VarRef>(rhs)) {
      const Vr src = ctx_.reg_table.lookup(v->name());
      if (src != r) emit_mov(out_, config_.isa, 1, r, src);
      return;
    }
    AUGEM_FAIL("unsupported untagged F64 statement: " << rhs.to_string());
  }

  // Pointer assignments: `ptr = base`, `ptr = base + expr` (element units).
  void emit_ptr_assign(const std::string& dst, const Expr& rhs) {
    const Home& hd = home(dst);
    const Gpr target = hd.in_reg ? hd.reg : kScratch1;

    if (const auto* v = ir::as<VarRef>(rhs)) {
      const Gpr src = read_var(v->name(), kScratch0);
      if (src != target) out_.push_back(imov(target, src));
    } else {
      const auto* b = ir::as<Binary>(rhs);
      AUGEM_CHECK(b != nullptr && b->op() == BinOp::kAdd,
                  "pointer RHS must be base or base+expr: " << rhs.to_string());
      const auto* base = ir::as<VarRef>(b->lhs());
      AUGEM_CHECK(base != nullptr, "pointer base must be a variable");
      const bool self_update = base->name() == dst;

      if (const auto* c = ir::as<IntConst>(b->rhs())) {
        // ptr = base + const → lea or add.
        const Gpr src = self_update && hd.in_reg
                            ? hd.reg
                            : read_var(base->name(), kScratch0);
        if (src == target) {
          out_.push_back(iadd_imm(target, 8 * c->value()));
        } else {
          out_.push_back(
              lea(target, mem_bd(src, static_cast<std::int32_t>(8 * c->value()))));
        }
      } else if (const auto* v = ir::as<VarRef>(b->rhs());
                 v != nullptr && self_update &&
                 stride_source_.count("stride$" + v->name()) > 0) {
        // Self-advance by a hoisted byte stride: one add.
        const Home& hs = home("stride$" + v->name());
        const Gpr src = self_update && hd.in_reg ? hd.reg
                                                 : read_var(dst, target);
        (void)src;
        if (hs.in_reg) {
          out_.push_back(iadd(target, hs.reg));
        } else {
          out_.push_back(iadd_mem(target, slot_mem(hs.slot)));
        }
      } else {
        // ptr = base + expr: evaluate the element offset, scale, combine.
        eval_int(b->rhs(), kScratch0, kScratch1 == target ? Gpr::kNoGpr
                                                          : kScratch1);
        out_.push_back(ishl_imm(kScratch0, 3));
        const Gpr src = self_update && hd.in_reg
                            ? hd.reg
                            : read_var(base->name(),
                                       target == kScratch1 ? kScratch1 : target);
        if (src == target) {
          out_.push_back(iadd(target, kScratch0));
        } else {
          out_.push_back(lea(target, mem_bis(src, kScratch0, 1)));
        }
      }
    }
    if (!hd.in_reg) out_.push_back(istore(target, slot_mem(hd.slot)));
  }

  // Integer assignments: evaluate into the home.
  void assign_int(const std::string& dst, const Expr& rhs) {
    const Home& hd = home(dst);
    const Gpr target = hd.in_reg ? hd.reg : kScratch0;
    eval_int(rhs, target, target == kScratch0 ? kScratch1 : kScratch0);
    if (!hd.in_reg) out_.push_back(istore(target, slot_mem(hd.slot)));
  }

  /// Evaluates an integer expression into `dst`. `scratch` is used for
  /// non-leaf right operands; kNoGpr when unavailable (then the expression
  /// must be shallow).
  void eval_int(const Expr& e, Gpr dst, Gpr scratch) {
    switch (e.kind()) {
      case ExprKind::kIntConst:
        out_.push_back(imov_imm(dst, ir::as<IntConst>(e)->value()));
        return;
      case ExprKind::kVarRef: {
        const Home& h = home(ir::as<VarRef>(e)->name());
        if (h.in_reg) {
          if (h.reg != dst) out_.push_back(imov(dst, h.reg));
        } else {
          out_.push_back(iload(dst, slot_mem(h.slot)));
        }
        return;
      }
      case ExprKind::kBinary: {
        const auto* b = ir::as<Binary>(e);
        eval_int(b->lhs(), dst, scratch);
        apply_int_op(b->op(), dst, b->rhs(), scratch);
        return;
      }
      default:
        AUGEM_FAIL("non-integer expression in index context: " << e.to_string());
    }
  }

  /// dst = dst OP rhs.
  void apply_int_op(BinOp op, Gpr dst, const Expr& rhs, Gpr scratch) {
    AUGEM_CHECK(op != BinOp::kMax, "max is floating-point only");
    if (const auto* c = ir::as<IntConst>(rhs)) {
      switch (op) {
        case BinOp::kAdd: out_.push_back(iadd_imm(dst, c->value())); return;
        case BinOp::kSub: out_.push_back(isub_imm(dst, c->value())); return;
        case BinOp::kMul: out_.push_back(imul_imm(dst, dst, c->value())); return;
        case BinOp::kMax: break;
      }
    }
    Gpr src;
    if (const auto* v = ir::as<VarRef>(rhs)) {
      const Home& h = home(v->name());
      if (!h.in_reg) {
        // Spilled leaf: fold the frame slot into the instruction itself
        // (addq/subq/imulq mem, reg) — no scratch register needed.
        switch (op) {
          case BinOp::kAdd: out_.push_back(iadd_mem(dst, slot_mem(h.slot))); return;
          case BinOp::kSub: out_.push_back(isub_mem(dst, slot_mem(h.slot))); return;
          case BinOp::kMul: out_.push_back(imul_mem(dst, slot_mem(h.slot))); return;
          case BinOp::kMax: break;
        }
      }
      src = h.reg;
    } else {
      AUGEM_CHECK(scratch != Gpr::kNoGpr, "expression too deep to evaluate");
      eval_int(rhs, scratch, Gpr::kNoGpr);
      src = scratch;
    }
    switch (op) {
      case BinOp::kAdd: out_.push_back(iadd(dst, src)); return;
      case BinOp::kSub: out_.push_back(isub(dst, src)); return;
      case BinOp::kMul: out_.push_back(imul(dst, src)); return;
      case BinOp::kMax: break;
    }
  }

  std::string fresh_label(const std::string& hint) {
    return ".L" + kernel_.name() + "_" + hint + "_" +
           std::to_string(label_counter_++);
  }

  ir::Kernel kernel_;
  OptConfig config_;
  const analysis::KernelContract* contract_;
  match::MatchResult match_;
  VecPlan plan_;

  std::map<std::string, Home> homes_;
  std::map<const ForStmt*, std::string> bound_name_;
  std::map<std::string, double> stride_weight_;
  std::map<std::string, std::string> stride_source_;
  std::map<std::string, int> f64_slot_;
  int next_slot_ = 0;
  int frame_bytes_ = 0;
  bool mem_scratch_toggle_ = false;
  std::vector<Gpr> saved_;
  int label_counter_ = 0;

  std::unique_ptr<VrAllocator> vralloc_;
  EmitCtx ctx_;
  MInstList out_;
};

}  // namespace

GeneratedKernel generate_assembly(ir::Kernel kernel, const OptConfig& config,
                                  const analysis::KernelContract* contract) {
  return CodeGenerator(std::move(kernel), config, contract).run();
}

}  // namespace augem::asmgen
