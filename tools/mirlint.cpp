// mirlint — static analyzer for AUGEM-generated machine kernels.
//
// Generates a kernel exactly as augemc would, then runs the full analysis
// pipeline (analysis/analyzer.hpp) on its machine IR: CFG construction,
// structural and encoding checks, flag liveness, path-sensitive definite
// assignment, dead-store and register-queue-reuse detection, and symbolic
// memory-bounds proofs against the kernel's calling contract.
//
//   mirlint [options]
//     --kernel gemm|gemv|axpy|dot|scal   kernel to analyze (default gemm)
//     --isa sse2|avx|fma3|fma4           target ISA (default fma3)
//     --layout rowpanel|colmajor         packed-B layout (GEMM)
//     --strategy vdup|shuf|scalar|auto   vectorization strategy
//     --mr N --nr N --ku N --unroll N    tile / unroll parameters
//     --small MxNxK                      analyze the shape-specialized
//                                        batched small-GEMM kernel instead
//                                        of the blocked GEMM
//     --epi scale,bias,relu              fused epilogue for --small (any
//                                        comma-separated subset)
//     --prefetch N | --no-prefetch       software prefetching
//     --no-schedule                      disable instruction scheduling
//     --no-bounds                        skip the symbolic bounds pass
//     --text                             human-readable findings (default JSON)
//     --sweep                            analyze the full op x layout x ISA x
//                                        strategy x tile grid; print a summary
//     --help
//
// Exit status: 0 when no error-severity findings, 1 otherwise (warnings
// alone — dead stores, queue-reuse hazards, long prefetches — exit 0).

#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "asmgen/codegen.hpp"
#include "augem/augem.hpp"
#include "frontend/kernels.hpp"
#include "opt/plan.hpp"
#include "support/error.hpp"
#include "transform/ckernel.hpp"

namespace {

using namespace augem;
using frontend::BLayout;
using frontend::KernelKind;

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr, R"(mirlint — machine-IR static analyzer
usage: mirlint [--kernel K] [--isa I] [config options] [--text] [--sweep]
  --kernel gemm|gemv|axpy|dot|scal    (default gemm)
  --isa sse2|avx|fma3|fma4            (default fma3)
  --layout rowpanel|colmajor
  --strategy vdup|shuf|scalar|auto
  --mr N --nr N --ku N --unroll N
  --small MxNxK   analyze the batched small-GEMM kernel for these extents
  --epi LIST      fused epilogue for --small: comma-separated scale,bias,relu
  --prefetch DIST | --no-prefetch
  --no-schedule   disable instruction scheduling
  --no-bounds     skip the symbolic memory-bounds pass
  --text          human-readable findings instead of JSON
  --sweep         analyze every op x layout x ISA x strategy x tile config
exit: 0 = no errors (warnings allowed), 1 = error findings or bad usage
)");
  std::exit(code);
}

std::optional<KernelKind> parse_kernel(const std::string& s) {
  for (KernelKind k : {KernelKind::kGemm, KernelKind::kGemv, KernelKind::kAxpy,
                       KernelKind::kDot, KernelKind::kScal})
    if (s == frontend::kernel_kind_name(k)) return k;
  return std::nullopt;
}

std::optional<Isa> parse_isa(const std::string& s) {
  for (Isa i : {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4}) {
    std::string name = isa_name(i);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    if (s == name) return i;
  }
  return std::nullopt;
}

struct Case {
  KernelKind op = KernelKind::kGemm;
  BLayout layout = BLayout::kRowPanel;
  opt::OptConfig config;
  transform::CGenParams params;
  /// Set for the batched small-GEMM path: the shape-specialized fully
  /// unrolled kernel with these extents + fused epilogue is analyzed
  /// instead of the generic blocked kernel.
  std::optional<frontend::SmallGemmSpec> small;

  std::string to_string() const {
    std::string s = frontend::kernel_kind_name(op);
    if (small) {
      s += " small=";
      s += small->to_string();
    }
    s += " [";
    s += isa_name(config.isa);
    s += ", ";
    s += vec_strategy_name(config.strategy);
    if (op == KernelKind::kGemm && !small) {
      s += layout == BLayout::kRowPanel ? ", rowpanel" : ", colmajor";
    }
    s += ", ";
    s += params.to_string();
    s += "]";
    return s;
  }
};

/// Generates and analyzes one configuration. Returns the number of
/// error-severity findings (a generation-time verifier throw counts as one).
int analyze_case(const Case& c, bool with_bounds, bool as_text, bool print) {
  asmgen::GeneratedKernel gen = [&] {
    // Generate WITHOUT a contract: the analyzer below is the one reporting,
    // so generation-time bounds failures don't abort before we can print.
    ir::Kernel k = c.small
                       ? transform::generate_small_gemm_c(*c.small, c.params)
                       : transform::generate_optimized_c(c.op, c.layout,
                                                         c.params);
    return asmgen::generate_assembly(std::move(k), c.config);
  }();

  int f64_params = 0;
  for (const ir::Param& p : gen.source.params())
    if (p.type == ir::ScalarType::kF64) ++f64_params;

  const analysis::KernelContract contract =
      c.small ? analysis::contract_for_small_gemm(*c.small, gen.source)
              : analysis::contract_for(c.op, c.layout, c.params, gen.source);
  analysis::AnalyzeOptions aopts;
  aopts.num_f64_params = f64_params;
  if (with_bounds) aopts.contract = &contract;

  const analysis::AnalysisReport report = analysis::analyze(gen.insts, aopts);
  if (print) {
    if (as_text)
      std::fputs(report.to_string(gen.insts).c_str(), stdout);
    else
      std::fputs(report.to_json(gen.insts).c_str(), stdout);
  }
  return static_cast<int>(report.errors());
}

int run_sweep(bool with_bounds) {
  int analyzed = 0, rejected = 0, errors = 0, warnings = 0, failed_cases = 0;
  auto visit = [&](const Case& c) {
    try {
      ir::Kernel k =
          c.small ? transform::generate_small_gemm_c(*c.small, c.params)
                  : transform::generate_optimized_c(c.op, c.layout, c.params);
      asmgen::GeneratedKernel gen =
          asmgen::generate_assembly(std::move(k), c.config);

      int f64_params = 0;
      for (const ir::Param& p : gen.source.params())
        if (p.type == ir::ScalarType::kF64) ++f64_params;
      const analysis::KernelContract contract =
          c.small
              ? analysis::contract_for_small_gemm(*c.small, gen.source)
              : analysis::contract_for(c.op, c.layout, c.params, gen.source);
      analysis::AnalyzeOptions aopts;
      aopts.num_f64_params = f64_params;
      if (with_bounds) aopts.contract = &contract;

      const analysis::AnalysisReport report =
          analysis::analyze(gen.insts, aopts);
      ++analyzed;
      warnings += static_cast<int>(report.count(analysis::Severity::kWarning));
      if (report.errors() > 0) {
        ++failed_cases;
        errors += static_cast<int>(report.errors());
        std::printf("FAIL %s\n", c.to_string().c_str());
        for (const analysis::Finding& f : report.findings)
          if (f.severity == analysis::Severity::kError)
            std::printf("  [%zu] %s: %s\n", f.index, f.kind.c_str(),
                        f.message.c_str());
      }
    } catch (const Error& e) {
      // Planner / register-allocator rejections are expected out-of-domain
      // outcomes; a verification failure inside generation is a real error.
      if (std::strstr(e.what(), "machine-code verification failed") !=
          nullptr) {
        ++failed_cases;
        ++errors;
        std::printf("FAIL %s\n  generation-time verification: %s\n",
                    c.to_string().c_str(), e.what());
      } else {
        ++rejected;
      }
    }
  };

  const Isa isas[] = {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4};
  const opt::VecStrategy strategies[] = {
      opt::VecStrategy::kVdup, opt::VecStrategy::kShuf,
      opt::VecStrategy::kScalar, opt::VecStrategy::kAuto};

  for (Isa isa : isas) {
    const int w = isa_vector_doubles(isa);
    for (opt::VecStrategy strat : strategies) {
      // GEMM: both layouts, a grid of register tiles and inner unrolls.
      for (BLayout layout : {BLayout::kRowPanel, BLayout::kColMajor}) {
        for (const auto& [mr, nr] : {std::pair{w, w},       {2 * w, w},
                                     std::pair{2 * w, 2 * w}, {4 * w, w},
                                     std::pair{w, 2 * w}}) {
          for (int ku : {1, 2, 4}) {
            for (bool pf : {false, true}) {
              Case c;
              c.op = KernelKind::kGemm;
              c.layout = layout;
              c.config.isa = isa;
              c.config.strategy = strat;
              c.params.mr = mr;
              c.params.nr = nr;
              c.params.ku = ku;
              c.params.prefetch.enabled = pf;
              visit(c);
            }
          }
        }
      }
      // Level-1/2 kernels: unroll grid.
      for (KernelKind op : {KernelKind::kGemv, KernelKind::kAxpy,
                            KernelKind::kDot, KernelKind::kScal}) {
        for (int unroll : {1, 2, w, 2 * w, 4 * w}) {
          for (bool pf : {false, true}) {
            Case c;
            c.op = op;
            c.config.isa = isa;
            c.config.strategy = strat;
            c.params.unroll = unroll;
            c.params.prefetch.enabled = pf;
            visit(c);
          }
        }
      }
    }
  }

  // Batched small-GEMM kernels: shape x fused-epilogue grid on every ISA.
  // The register tile comes from small_gemm_params (what the dispatcher
  // bakes in), so this sweeps exactly the variants the runtime can serve.
  {
    const frontend::EpilogueSpec epis[] = {
        {},
        {.scale = true},
        {.bias = true},
        {.relu = true},
        {.scale = true, .bias = true},
        {.bias = true, .relu = true},
        {.scale = true, .relu = true},
        {.scale = true, .bias = true, .relu = true},
    };
    const struct {
      int m, n, k;
    } shapes[] = {{16, 16, 16}, {8, 4, 8}, {4, 4, 4}, {5, 3, 7}, {32, 32, 8}};
    for (Isa isa : isas)
      for (const auto& sh : shapes)
        for (const frontend::EpilogueSpec& e : epis) {
          frontend::SmallGemmSpec spec;
          spec.m = sh.m;
          spec.n = sh.n;
          spec.k = sh.k;
          spec.epilogue = e;
          Case c;
          c.op = KernelKind::kGemm;
          c.small = spec;
          c.config.isa = isa;
          c.config.strategy = opt::VecStrategy::kVdup;
          c.params = small_gemm_params(spec, isa);
          visit(c);
        }
  }

  std::printf(
      "mirlint sweep: %d configs analyzed, %d rejected (out of domain), "
      "%d warning(s), %d error finding(s) in %d config(s)\n",
      analyzed, rejected, warnings, errors, failed_cases);
  return errors > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Case c;
  c.config.isa = Isa::kFma3;
  bool with_bounds = true;
  bool as_text = false;
  bool sweep = false;
  bool tile_set = false;      // explicit --mr/--nr override the small default
  bool strategy_set = false;  // explicit --strategy overrides the small default
  frontend::EpilogueSpec epi;

  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      usage(1);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (arg == "--kernel") {
      const auto k = parse_kernel(need_value(i));
      if (!k) usage(1);
      c.op = *k;
    } else if (arg == "--isa") {
      const auto isa = parse_isa(need_value(i));
      if (!isa) usage(1);
      c.config.isa = *isa;
    } else if (arg == "--layout") {
      const std::string v = need_value(i);
      if (v == "rowpanel") c.layout = BLayout::kRowPanel;
      else if (v == "colmajor") c.layout = BLayout::kColMajor;
      else usage(1);
    } else if (arg == "--strategy") {
      const std::string v = need_value(i);
      if (v == "vdup") c.config.strategy = opt::VecStrategy::kVdup;
      else if (v == "shuf") c.config.strategy = opt::VecStrategy::kShuf;
      else if (v == "scalar") c.config.strategy = opt::VecStrategy::kScalar;
      else if (v == "auto") c.config.strategy = opt::VecStrategy::kAuto;
      else usage(1);
      strategy_set = true;
    } else if (arg == "--small") {
      const std::string v = need_value(i);
      frontend::SmallGemmSpec spec;
      if (std::sscanf(v.c_str(), "%dx%dx%d", &spec.m, &spec.n, &spec.k) != 3 ||
          spec.m < 1 || spec.n < 1 || spec.k < 1) {
        std::fprintf(stderr, "bad --small value: %s (want MxNxK)\n", v.c_str());
        usage(1);
      }
      c.small = spec;
    } else if (arg == "--epi") {
      std::string v = need_value(i);
      for (char& ch : v)
        if (ch == ',' || ch == '+') ch = ' ';
      std::istringstream in(v);
      std::string tok;
      while (in >> tok) {
        if (tok == "scale") epi.scale = true;
        else if (tok == "bias") epi.bias = true;
        else if (tok == "relu") epi.relu = true;
        else {
          std::fprintf(stderr, "bad --epi token: %s\n", tok.c_str());
          usage(1);
        }
      }
    } else if (arg == "--mr") {
      c.params.mr = std::stoi(need_value(i));
      tile_set = true;
    } else if (arg == "--nr") {
      c.params.nr = std::stoi(need_value(i));
      tile_set = true;
    } else if (arg == "--ku") {
      c.params.ku = std::stoi(need_value(i));
    } else if (arg == "--unroll") {
      c.params.unroll = std::stoi(need_value(i));
    } else if (arg == "--prefetch") {
      c.params.prefetch.enabled = true;
      c.params.prefetch.distance = std::stoi(need_value(i));
    } else if (arg == "--no-prefetch") {
      c.params.prefetch.enabled = false;
    } else if (arg == "--no-schedule") {
      c.config.schedule = false;
    } else if (arg == "--no-bounds") {
      with_bounds = false;
    } else if (arg == "--text") {
      as_text = true;
    } else if (arg == "--sweep") {
      sweep = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(1);
    }
  }

  if (c.small) {
    c.small->epilogue = epi;
    c.op = KernelKind::kGemm;
    // Mirror the dispatcher's defaults unless explicitly overridden: the
    // register tile follows from the extents (and the scale epilogue's
    // register pressure), and small kernels vectorize with vdup.
    if (!tile_set) c.params = small_gemm_params(*c.small, c.config.isa);
    if (!strategy_set) c.config.strategy = opt::VecStrategy::kVdup;
  } else if (epi.scale || epi.bias || epi.relu) {
    std::fprintf(stderr, "--epi requires --small\n");
    usage(1);
  }

  try {
    if (sweep) return run_sweep(with_bounds);
    return analyze_case(c, with_bounds, as_text, /*print=*/true) > 0 ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "mirlint: %s\n", e.what());
    return 1;
  }
}
