// mirlint — static analyzer for AUGEM-generated machine kernels.
//
// Generates a kernel exactly as augemc would, then runs the full analysis
// pipeline (analysis/analyzer.hpp) on its machine IR: CFG construction,
// structural and encoding checks, flag liveness, path-sensitive definite
// assignment, dead-store and register-queue-reuse detection, and symbolic
// memory-bounds proofs against the kernel's calling contract.
//
//   mirlint [options]
//     --kernel gemm|gemv|axpy|dot|scal   kernel to analyze (default gemm)
//     --isa sse2|avx|fma3|fma4           target ISA (default fma3)
//     --layout rowpanel|colmajor         packed-B layout (GEMM)
//     --strategy vdup|shuf|scalar|auto   vectorization strategy
//     --mr N --nr N --ku N --unroll N    tile / unroll parameters
//     --small MxNxK                      analyze the shape-specialized
//                                        batched small-GEMM kernel instead
//                                        of the blocked GEMM
//     --epi scale,bias,relu              fused epilogue for --small (any
//                                        comma-separated subset)
//     --prefetch N | --no-prefetch       software prefetching
//     --no-schedule                      disable instruction scheduling
//     --no-bounds                        skip the symbolic bounds pass
//     --semantics                        also run translation validation
//                                        (single-case mode; the sweep always
//                                        runs it unless --no-semantics)
//     --no-semantics                     skip translation validation
//     --text                             human-readable findings (default JSON)
//     --sweep                            analyze the full op x layout x ISA x
//                                        strategy x tile grid; print progress,
//                                        a per-pass findings table and a
//                                        summary
//     --artifact PATH                    (with --sweep) also write a JSON
//                                        artifact with per-section results
//     --search-sample N                  (with --sweep) additionally analyze
//                                        N random points drawn from the
//                                        tuner's search spaces — the same
//                                        spaces the hill climb walks — so
//                                        search-reachable configs outside
//                                        the fixed grid are bounds-proved
//     --search-seed S                    RNG seed for --search-sample
//                                        (default 2013, deterministic)
//     --check-artifact PATH              validate a sweep artifact instead of
//                                        analyzing; requires --section
//     --section bounds|semantics|search_sample
//                                        artifact section to gate on
//     --help
//
// Exit status: 0 when no error-severity findings, 1 otherwise (warnings
// alone — dead stores, queue-reuse hazards, long prefetches — exit 0).
// The artifact schema is documented in docs/static-analysis.md.

#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "asmgen/codegen.hpp"
#include "augem/augem.hpp"
#include "frontend/kernels.hpp"
#include "opt/plan.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "transform/ckernel.hpp"
#include "tuning/search.hpp"

namespace {

using namespace augem;
using frontend::BLayout;
using frontend::KernelKind;

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr, R"(mirlint — machine-IR static analyzer
usage: mirlint [--kernel K] [--isa I] [config options] [--text] [--sweep]
  --kernel gemm|gemv|axpy|dot|scal    (default gemm)
  --isa sse2|avx|fma3|fma4            (default fma3)
  --layout rowpanel|colmajor
  --strategy vdup|shuf|scalar|auto
  --mr N --nr N --ku N --unroll N
  --small MxNxK   analyze the batched small-GEMM kernel for these extents
  --epi LIST      fused epilogue for --small: comma-separated scale,bias,relu
  --prefetch DIST | --no-prefetch
  --no-schedule   disable instruction scheduling
  --no-bounds     skip the symbolic memory-bounds pass
  --semantics     also run translation validation (default in --sweep)
  --no-semantics  skip translation validation
  --text          human-readable findings instead of JSON
  --sweep         analyze every op x layout x ISA x strategy x tile config
  --search-sample N  (with --sweep) also analyze N random tuner-search points
  --search-seed S    RNG seed for --search-sample (default 2013)
  --artifact P    (with --sweep) write a JSON artifact of the results
  --check-artifact P --section bounds|semantics|search_sample
                  gate on one section of a previously written artifact
exit: 0 = no errors (warnings allowed), 1 = error findings or bad usage
)");
  std::exit(code);
}

std::optional<KernelKind> parse_kernel(const std::string& s) {
  for (KernelKind k : {KernelKind::kGemm, KernelKind::kGemv, KernelKind::kAxpy,
                       KernelKind::kDot, KernelKind::kScal})
    if (s == frontend::kernel_kind_name(k)) return k;
  return std::nullopt;
}

std::optional<Isa> parse_isa(const std::string& s) {
  for (Isa i : {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4}) {
    std::string name = isa_name(i);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    if (s == name) return i;
  }
  return std::nullopt;
}

struct Case {
  KernelKind op = KernelKind::kGemm;
  BLayout layout = BLayout::kRowPanel;
  opt::OptConfig config;
  transform::CGenParams params;
  /// Set for the batched small-GEMM path: the shape-specialized fully
  /// unrolled kernel with these extents + fused epilogue is analyzed
  /// instead of the generic blocked kernel.
  std::optional<frontend::SmallGemmSpec> small;

  std::string to_string() const {
    std::string s = frontend::kernel_kind_name(op);
    if (small) {
      s += " small=";
      s += small->to_string();
    }
    s += " [";
    s += isa_name(config.isa);
    s += ", ";
    s += vec_strategy_name(config.strategy);
    if (op == KernelKind::kGemm && !small) {
      s += layout == BLayout::kRowPanel ? ", rowpanel" : ", colmajor";
    }
    s += ", ";
    s += params.to_string();
    s += "]";
    return s;
  }
};

/// The reference-semantics spec the translation validator should prove a
/// case against.
analysis::SemanticsSpec semantics_spec_for(const Case& c) {
  analysis::SemanticsSpec s;
  s.kind = c.op;
  s.layout = c.layout;
  s.small = c.small;
  return s;
}

/// Generates and analyzes one configuration. Returns the number of
/// error-severity findings (a generation-time verifier throw counts as one).
int analyze_case(const Case& c, bool with_bounds, bool with_semantics,
                 bool as_text, bool print) {
  asmgen::GeneratedKernel gen = [&] {
    // Generate WITHOUT a contract: the analyzer below is the one reporting,
    // so generation-time bounds failures don't abort before we can print.
    ir::Kernel k = c.small
                       ? transform::generate_small_gemm_c(*c.small, c.params)
                       : transform::generate_optimized_c(c.op, c.layout,
                                                         c.params);
    return asmgen::generate_assembly(std::move(k), c.config);
  }();

  int f64_params = 0;
  for (const ir::Param& p : gen.source.params())
    if (p.type == ir::ScalarType::kF64) ++f64_params;

  const analysis::KernelContract contract =
      c.small ? analysis::contract_for_small_gemm(*c.small, gen.source)
              : analysis::contract_for(c.op, c.layout, c.params, gen.source);
  const analysis::SemanticsSpec sspec = semantics_spec_for(c);
  analysis::AnalyzeOptions aopts;
  aopts.num_f64_params = f64_params;
  if (with_bounds) aopts.contract = &contract;
  if (with_bounds && with_semantics) aopts.semantics = &sspec;

  const analysis::AnalysisReport report = analysis::analyze(gen.insts, aopts);
  if (print) {
    if (as_text)
      std::fputs(report.to_string(gen.insts).c_str(), stdout);
    else
      std::fputs(report.to_json(gen.insts).c_str(), stdout);
  }
  return static_cast<int>(report.errors());
}

/// Aggregated sweep results, split into the two gated sections: the
/// semantics section holds every `semantics-*` finding (the translation
/// validator), the bounds section everything else (bounds proofs plus the
/// structural/flags/assignment passes and generation-time verifier throws).
struct SweepStats {
  int analyzed = 0;
  int rejected = 0;
  int warnings = 0;
  int errors_bounds = 0;
  int errors_semantics = 0;
  int sampled = 0;            ///< --search-sample points analyzed
  int errors_search = 0;      ///< error findings on sampled search points
  std::vector<std::string> failed_bounds;
  std::vector<std::string> failed_semantics;
  std::vector<std::string> failed_search;
  std::map<std::string, int> by_kind;  ///< error/warning findings per kind
};

bool is_semantics_kind(const std::string& kind) {
  return kind.rfind("semantics-", 0) == 0;
}

void write_artifact(const SweepStats& s, const std::string& path) {
  std::ostringstream os;
  auto section = [&](const char* name, int errors,
                     const std::vector<std::string>& failed) {
    os << "\"" << name << "\":{\"errors\":" << errors
       << ",\"failed_configs\":[";
    for (std::size_t i = 0; i < failed.size(); ++i) {
      if (i) os << ",";
      os << "\"" << analysis::json_escape(failed[i]) << "\"";
    }
    os << "]}";
  };
  os << "{\"analyzed\":" << s.analyzed << ",\"rejected\":" << s.rejected
     << ",\"warnings\":" << s.warnings << ",\"sections\":{";
  section("bounds", s.errors_bounds, s.failed_bounds);
  os << ",";
  section("semantics", s.errors_semantics, s.failed_semantics);
  os << ",";
  section("search_sample", s.errors_search, s.failed_search);
  os << "},\"sampled\":" << s.sampled << ",\"by_kind\":{";
  bool first = true;
  for (const auto& [kind, n] : s.by_kind) {
    if (!first) os << ",";
    first = false;
    os << "\"" << analysis::json_escape(kind) << "\":" << n;
  }
  os << "}}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "mirlint: cannot write artifact %s\n", path.c_str());
    std::exit(1);
  }
  std::fputs(os.str().c_str(), f);
  std::fclose(f);
}

/// Gate on one section of a previously written sweep artifact. Kept to a
/// deliberately small parser: the artifact is produced by write_artifact
/// above, so its shape is fully known.
int check_artifact(const std::string& path, const std::string& section) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "mirlint: cannot read artifact %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  int analyzed = -1;
  if (std::sscanf(text.c_str(), "{\"analyzed\":%d", &analyzed) != 1 ||
      analyzed <= 0) {
    std::fprintf(stderr, "mirlint: artifact %s has no analyzed configs\n",
                 path.c_str());
    return 1;
  }
  const std::string key = "\"" + section + "\":{\"errors\":";
  const char* at = std::strstr(text.c_str(), key.c_str());
  int errors = -1;
  if (at == nullptr ||
      std::sscanf(at + key.size(), "%d", &errors) != 1 || errors < 0) {
    std::fprintf(stderr, "mirlint: artifact %s has no '%s' section\n",
                 path.c_str(), section.c_str());
    return 1;
  }
  std::printf("mirlint %s gate: %d configs analyzed, %d error finding(s)\n",
              section.c_str(), analyzed, errors);
  if (errors > 0) {
    // Surface the failing configs for the log.
    const std::string fkey = "\"failed_configs\":[";
    const char* fat = std::strstr(at, fkey.c_str());
    if (fat != nullptr) {
      const char* end = std::strchr(fat, ']');
      if (end != nullptr)
        std::printf("  failing: %.*s\n",
                    static_cast<int>(end - fat - fkey.size()),
                    fat + fkey.size());
    }
  }
  return errors > 0 ? 1 : 0;
}

int run_sweep(bool with_bounds, bool with_semantics, int search_sample,
              std::uint64_t search_seed, const std::string& artifact_path) {
  SweepStats stats;
  constexpr int kProgressEvery = 128;
  int visited = 0;
  // `sampled` routes a case's error findings into the search_sample
  // artifact section instead of bounds/semantics: sampled points gate the
  // tuner's reachable space, the fixed grid gates the generator itself.
  bool sampled = false;
  auto visit = [&](const Case& c) {
    if (++visited % kProgressEvery == 0)
      std::fprintf(stderr, "mirlint sweep: ... %d configs visited (%d "
                           "analyzed, %d rejected)\n",
                   visited, stats.analyzed, stats.rejected);
    try {
      ir::Kernel k =
          c.small ? transform::generate_small_gemm_c(*c.small, c.params)
                  : transform::generate_optimized_c(c.op, c.layout, c.params);
      asmgen::GeneratedKernel gen =
          asmgen::generate_assembly(std::move(k), c.config);

      int f64_params = 0;
      for (const ir::Param& p : gen.source.params())
        if (p.type == ir::ScalarType::kF64) ++f64_params;
      const analysis::KernelContract contract =
          c.small
              ? analysis::contract_for_small_gemm(*c.small, gen.source)
              : analysis::contract_for(c.op, c.layout, c.params, gen.source);
      const analysis::SemanticsSpec sspec = semantics_spec_for(c);
      analysis::AnalyzeOptions aopts;
      aopts.num_f64_params = f64_params;
      if (with_bounds) aopts.contract = &contract;
      if (with_bounds && with_semantics) aopts.semantics = &sspec;

      const analysis::AnalysisReport report =
          analysis::analyze(gen.insts, aopts);
      ++stats.analyzed;
      if (sampled) ++stats.sampled;
      stats.warnings +=
          static_cast<int>(report.count(analysis::Severity::kWarning));
      int err_bounds = 0, err_sem = 0;
      for (const analysis::Finding& f : report.findings) {
        if (f.severity == analysis::Severity::kNote) continue;
        ++stats.by_kind[f.kind];
        if (f.severity != analysis::Severity::kError) continue;
        if (is_semantics_kind(f.kind))
          ++err_sem;
        else
          ++err_bounds;
      }
      if (err_bounds + err_sem > 0) {
        std::printf("FAIL %s\n", c.to_string().c_str());
        for (const analysis::Finding& f : report.findings)
          if (f.severity == analysis::Severity::kError)
            std::printf("  [%zu] %s: %s\n", f.index, f.kind.c_str(),
                        f.message.c_str());
      }
      if (sampled) {
        if (err_bounds + err_sem > 0) {
          stats.errors_search += err_bounds + err_sem;
          stats.failed_search.push_back(c.to_string());
        }
      } else {
        if (err_bounds > 0) {
          stats.errors_bounds += err_bounds;
          stats.failed_bounds.push_back(c.to_string());
        }
        if (err_sem > 0) {
          stats.errors_semantics += err_sem;
          stats.failed_semantics.push_back(c.to_string());
        }
      }
    } catch (const Error& e) {
      // Planner / register-allocator rejections are expected out-of-domain
      // outcomes; a verification failure inside generation is a real error.
      if (std::strstr(e.what(), "machine-code verification failed") !=
          nullptr) {
        if (sampled) {
          ++stats.errors_search;
          stats.failed_search.push_back(c.to_string());
        } else {
          ++stats.errors_bounds;
          stats.failed_bounds.push_back(c.to_string());
        }
        ++stats.by_kind["generation-verify"];
        std::printf("FAIL %s\n  generation-time verification: %s\n",
                    c.to_string().c_str(), e.what());
      } else {
        ++stats.rejected;
      }
    }
  };

  const Isa isas[] = {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4};
  const opt::VecStrategy strategies[] = {
      opt::VecStrategy::kVdup, opt::VecStrategy::kShuf,
      opt::VecStrategy::kScalar, opt::VecStrategy::kAuto};

  for (Isa isa : isas) {
    const int w = isa_vector_doubles(isa);
    for (opt::VecStrategy strat : strategies) {
      // GEMM: both layouts, a grid of register tiles and inner unrolls.
      for (BLayout layout : {BLayout::kRowPanel, BLayout::kColMajor}) {
        for (const auto& [mr, nr] : {std::pair{w, w},       {2 * w, w},
                                     std::pair{2 * w, 2 * w}, {4 * w, w},
                                     std::pair{w, 2 * w}}) {
          for (int ku : {1, 2, 4}) {
            for (bool pf : {false, true}) {
              Case c;
              c.op = KernelKind::kGemm;
              c.layout = layout;
              c.config.isa = isa;
              c.config.strategy = strat;
              c.params.mr = mr;
              c.params.nr = nr;
              c.params.ku = ku;
              c.params.prefetch.enabled = pf;
              visit(c);
            }
          }
        }
      }
      // Level-1/2 kernels: unroll grid.
      for (KernelKind op : {KernelKind::kGemv, KernelKind::kAxpy,
                            KernelKind::kDot, KernelKind::kScal}) {
        for (int unroll : {1, 2, w, 2 * w, 4 * w}) {
          for (bool pf : {false, true}) {
            Case c;
            c.op = op;
            c.config.isa = isa;
            c.config.strategy = strat;
            c.params.unroll = unroll;
            c.params.prefetch.enabled = pf;
            visit(c);
          }
        }
      }
    }
  }

  // Batched small-GEMM kernels: shape x fused-epilogue grid on every ISA.
  // The register tile comes from small_gemm_params (what the dispatcher
  // bakes in), so this sweeps exactly the variants the runtime can serve.
  {
    const frontend::EpilogueSpec epis[] = {
        {},
        {.scale = true},
        {.bias = true},
        {.relu = true},
        {.scale = true, .bias = true},
        {.bias = true, .relu = true},
        {.scale = true, .relu = true},
        {.scale = true, .bias = true, .relu = true},
    };
    const struct {
      int m, n, k;
    } shapes[] = {{16, 16, 16}, {8, 4, 8}, {4, 4, 4}, {5, 3, 7}, {32, 32, 8}};
    for (Isa isa : isas)
      for (const auto& sh : shapes)
        for (const frontend::EpilogueSpec& e : epis) {
          frontend::SmallGemmSpec spec;
          spec.m = sh.m;
          spec.n = sh.n;
          spec.k = sh.k;
          spec.epilogue = e;
          Case c;
          c.op = KernelKind::kGemm;
          c.small = spec;
          c.config.isa = isa;
          c.config.strategy = opt::VecStrategy::kVdup;
          c.params = small_gemm_params(spec, isa);
          visit(c);
        }
  }

  // --search-sample: draw N random points from the tuner's own search
  // spaces (tuning/search.hpp) and push them through the same analysis.
  // The hill climb can reach any of these; every one must bounds-prove
  // even though the fixed grid above never visits it.
  if (search_sample > 0) {
    Rng rng(search_seed);
    sampled = true;
    const KernelKind l1_ops[] = {KernelKind::kGemv, KernelKind::kAxpy,
                                 KernelKind::kDot, KernelKind::kScal};
    for (int i = 0; i < search_sample; ++i) {
      const Isa isa = isas[rng.engine()() % 4];
      const bool gemm = rng.engine()() % 2 == 0;
      const tuning::SearchSpace space =
          gemm ? tuning::SearchSpace::gemm(isa) : tuning::SearchSpace::level1();
      const tuning::Candidate cand = space.materialize(space.random_point(rng));
      Case c;
      c.op = gemm ? KernelKind::kGemm : l1_ops[rng.engine()() % 4];
      c.config.isa = isa;
      c.config.strategy = cand.strategy;
      c.params = cand.params;
      visit(c);
    }
    sampled = false;
    std::printf("mirlint search-sample: %d points drawn (seed %llu), "
                "%d analyzed, %d error finding(s)\n",
                search_sample, (unsigned long long)search_seed, stats.sampled,
                stats.errors_search);
  }

  // Count distinct failing configs (a config can fail both sections).
  std::set<std::string> failed(stats.failed_bounds.begin(),
                               stats.failed_bounds.end());
  failed.insert(stats.failed_semantics.begin(), stats.failed_semantics.end());
  failed.insert(stats.failed_search.begin(), stats.failed_search.end());
  const int errors =
      stats.errors_bounds + stats.errors_semantics + stats.errors_search;
  std::printf(
      "mirlint sweep: %d configs analyzed, %d rejected (out of domain), "
      "%d warning(s), %d error finding(s) in %d config(s)\n",
      stats.analyzed, stats.rejected, stats.warnings, errors,
      static_cast<int>(failed.size()));

  // Per-pass breakdown: every error/warning kind seen, grouped by section.
  if (with_bounds) {
    std::printf("  section     errors  failing configs\n");
    std::printf("  bounds      %6d  %d\n", stats.errors_bounds,
                static_cast<int>(stats.failed_bounds.size()));
    if (with_semantics)
      std::printf("  semantics   %6d  %d\n", stats.errors_semantics,
                  static_cast<int>(stats.failed_semantics.size()));
    if (search_sample > 0)
      std::printf("  search      %6d  %d\n", stats.errors_search,
                  static_cast<int>(stats.failed_search.size()));
  }
  if (!stats.by_kind.empty()) {
    std::printf("  findings by kind:\n");
    for (const auto& [kind, n] : stats.by_kind)
      std::printf("    %-28s %d\n", kind.c_str(), n);
  }

  if (!artifact_path.empty()) write_artifact(stats, artifact_path);
  return errors > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Case c;
  c.config.isa = Isa::kFma3;
  bool with_bounds = true;
  bool with_semantics = false;  // single-case default; --sweep defaults on
  bool semantics_set = false;
  bool as_text = false;
  bool sweep = false;
  int search_sample = 0;
  std::uint64_t search_seed = 2013;
  std::string artifact_path;
  std::string check_path;
  std::string section;
  bool tile_set = false;      // explicit --mr/--nr override the small default
  bool strategy_set = false;  // explicit --strategy overrides the small default
  frontend::EpilogueSpec epi;

  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      usage(1);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (arg == "--kernel") {
      const auto k = parse_kernel(need_value(i));
      if (!k) usage(1);
      c.op = *k;
    } else if (arg == "--isa") {
      const auto isa = parse_isa(need_value(i));
      if (!isa) usage(1);
      c.config.isa = *isa;
    } else if (arg == "--layout") {
      const std::string v = need_value(i);
      if (v == "rowpanel") c.layout = BLayout::kRowPanel;
      else if (v == "colmajor") c.layout = BLayout::kColMajor;
      else usage(1);
    } else if (arg == "--strategy") {
      const std::string v = need_value(i);
      if (v == "vdup") c.config.strategy = opt::VecStrategy::kVdup;
      else if (v == "shuf") c.config.strategy = opt::VecStrategy::kShuf;
      else if (v == "scalar") c.config.strategy = opt::VecStrategy::kScalar;
      else if (v == "auto") c.config.strategy = opt::VecStrategy::kAuto;
      else usage(1);
      strategy_set = true;
    } else if (arg == "--small") {
      const std::string v = need_value(i);
      frontend::SmallGemmSpec spec;
      if (std::sscanf(v.c_str(), "%dx%dx%d", &spec.m, &spec.n, &spec.k) != 3 ||
          spec.m < 1 || spec.n < 1 || spec.k < 1) {
        std::fprintf(stderr, "bad --small value: %s (want MxNxK)\n", v.c_str());
        usage(1);
      }
      c.small = spec;
    } else if (arg == "--epi") {
      std::string v = need_value(i);
      for (char& ch : v)
        if (ch == ',' || ch == '+') ch = ' ';
      std::istringstream in(v);
      std::string tok;
      while (in >> tok) {
        if (tok == "scale") epi.scale = true;
        else if (tok == "bias") epi.bias = true;
        else if (tok == "relu") epi.relu = true;
        else {
          std::fprintf(stderr, "bad --epi token: %s\n", tok.c_str());
          usage(1);
        }
      }
    } else if (arg == "--mr") {
      c.params.mr = std::stoi(need_value(i));
      tile_set = true;
    } else if (arg == "--nr") {
      c.params.nr = std::stoi(need_value(i));
      tile_set = true;
    } else if (arg == "--ku") {
      c.params.ku = std::stoi(need_value(i));
    } else if (arg == "--unroll") {
      c.params.unroll = std::stoi(need_value(i));
    } else if (arg == "--prefetch") {
      c.params.prefetch.enabled = true;
      c.params.prefetch.distance = std::stoi(need_value(i));
    } else if (arg == "--no-prefetch") {
      c.params.prefetch.enabled = false;
    } else if (arg == "--no-schedule") {
      c.config.schedule = false;
    } else if (arg == "--no-bounds") {
      with_bounds = false;
    } else if (arg == "--semantics") {
      with_semantics = true;
      semantics_set = true;
    } else if (arg == "--no-semantics") {
      with_semantics = false;
      semantics_set = true;
    } else if (arg == "--artifact") {
      artifact_path = need_value(i);
    } else if (arg == "--check-artifact") {
      check_path = need_value(i);
    } else if (arg == "--search-sample") {
      search_sample = std::stoi(need_value(i));
    } else if (arg == "--search-seed") {
      search_seed = std::stoull(need_value(i));
    } else if (arg == "--section") {
      section = need_value(i);
      if (section != "bounds" && section != "semantics" &&
          section != "search_sample") {
        std::fprintf(stderr, "bad --section value: %s\n", section.c_str());
        usage(1);
      }
    } else if (arg == "--text") {
      as_text = true;
    } else if (arg == "--sweep") {
      sweep = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(1);
    }
  }

  if (c.small) {
    c.small->epilogue = epi;
    c.op = KernelKind::kGemm;
    // Mirror the dispatcher's defaults unless explicitly overridden: the
    // register tile follows from the extents (and the scale epilogue's
    // register pressure), and small kernels vectorize with vdup.
    if (!tile_set) c.params = small_gemm_params(*c.small, c.config.isa);
    if (!strategy_set) c.config.strategy = opt::VecStrategy::kVdup;
  } else if (epi.scale || epi.bias || epi.relu) {
    std::fprintf(stderr, "--epi requires --small\n");
    usage(1);
  }

  if (!check_path.empty()) {
    if (section.empty()) {
      std::fprintf(stderr, "--check-artifact requires --section\n");
      usage(1);
    }
    return check_artifact(check_path, section);
  }

  // The sweep is the gate: it runs the translation validator by default so
  // both sections land in one generation pass. Single-case mode keeps it
  // opt-in (--semantics) since its reports are much longer.
  if (sweep && !semantics_set) with_semantics = true;

  try {
    if (sweep)
      return run_sweep(with_bounds, with_semantics, search_sample, search_seed,
                       artifact_path);
    return analyze_case(c, with_bounds, with_semantics, as_text,
                        /*print=*/true) > 0
               ? 1
               : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "mirlint: %s\n", e.what());
    return 1;
  }
}
