// service_smoke — end-to-end gate for tuning-as-a-service (docs/serving.md).
//
//   service_smoke --serviced <path-to-augem_serviced>
//
// One binary, two roles: the parent orchestrates a real daemon process plus
// a herd of client processes; with --client it *is* one of those clients
// (re-exec'd via /proc/self/exe). The scenario:
//
//   1. spawn `augem_serviced --quick` on a private cache dir;
//   2. 8 cold clients, released simultaneously by a start-time barrier, all
//      resolve the same two kernels — every client must get bit-identical
//      results, perform zero local builds and zero tuner runs (counters!),
//      and the daemon must report exactly one build per key machine-wide
//      with at least one resolve piggybacked on an in-flight build;
//   3. 4 warm clients — same checksum, daemon serves from its caches;
//   4. an AUGEM_NO_DAEMON=1 client — serves in-process from the shared
//      database file (daemon untouched), same checksum;
//   5. the parent itself resolves serially through the daemon — the serial
//      reference every concurrent checksum must equal bit for bit;
//   6. SIGKILL the daemon mid-run — the parent's live (now dead) client
//      must fall back to the in-process tuner without an error surfacing;
//   7. a fresh dir with AUGEM_DAEMON=1 — the first miss auto-spawns a
//      daemon, which is then asked to shut down over the protocol.
//
// Any violated expectation prints and exits nonzero (a ctest failure).

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/dispatch.hpp"
#include "runtime/key.hpp"
#include "runtime/tunedb.hpp"
#include "service/client.hpp"
#include "tuning/tuner.hpp"
#include "support/buffer.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace {

using augem::DoubleBuffer;
using augem::Json;
using augem::Rng;
using augem::frontend::KernelKind;
using augem::runtime::KernelRuntime;
using augem::runtime::RuntimeConfig;
using augem::runtime::ShapeClass;

#define SMOKE_CHECK(cond, ...)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "service_smoke FAILED at %s:%d: %s\n  ",  \
                   __FILE__, __LINE__, #cond);                       \
      std::fprintf(stderr, __VA_ARGS__);                             \
      std::fprintf(stderr, "\n");                                    \
      std::exit(1);                                                  \
    }                                                                \
  } while (0)

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

RuntimeConfig quick_config(const std::string& dir) {
  RuntimeConfig cfg;
  cfg.cache_dir = dir;
  cfg.use_persistent = true;
  augem::tuning::TuneWorkload w;
  w.mc = 32;
  w.nc = 32;
  w.kc = 64;
  w.vec_len = 2048;
  w.reps = 1;
  cfg.workload_override = w;
  return cfg;
}

/// The workload every participant runs: one large-shape GEMM microkernel
/// call and one AXPY over identical deterministically-seeded buffers.
/// Returns the FNV-1a checksum of the output bytes — any divergence in the
/// served kernel or its results shows up as a checksum mismatch.
std::uint64_t compute_checksum(KernelRuntime& rt) {
  const auto gemm = rt.resolve(KernelKind::kGemm, ShapeClass::kLarge);
  const auto axpy = rt.resolve(KernelKind::kAxpy, ShapeClass::kLarge);

  constexpr long kMc = 32, kNc = 32, kKc = 64, kVec = 2048;
  Rng rng(77);
  DoubleBuffer a(kMc * kKc), b(kNc * kKc), c(kMc * kNc);
  rng.fill(a.span());
  rng.fill(b.span());
  rng.fill(c.span());
  const long m = kMc / gemm->mr * gemm->mr;
  const long n = kNc / gemm->nr * gemm->nr;
  auto* gf = gemm->fn<void(long, long, long, const double*, const double*,
                           double*, long)>();
  gf(m, n, kKc, a.data(), b.data(), c.data(), kMc);

  DoubleBuffer x(kVec), y(kVec);
  rng.fill(x.span());
  rng.fill(y.span());
  auto* af = axpy->fn<void(long, double, const double*, double*)>();
  af(kVec, 1.25, x.data(), y.data());

  std::uint64_t h = 14695981039346656037ull;
  h = fnv_bytes(h, c.data(), c.size() * sizeof(double));
  h = fnv_bytes(h, y.data(), y.size() * sizeof(double));
  return h;
}

// ---- client role -----------------------------------------------------------

int run_client(const std::string& dir, long long start_at_ms,
               const std::string& out_path) {
  Json out = Json::object();
  try {
    KernelRuntime rt(quick_config(dir));
    if (start_at_ms > 0) {
      // Start barrier: every cold client begins resolving at the same
      // instant, so the daemon sees genuinely concurrent first misses.
      for (;;) {
        const auto now = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::system_clock::now().time_since_epoch())
                             .count();
        if (now >= start_at_ms) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    const std::uint64_t checksum = compute_checksum(rt);
    const auto counters = rt.counters();
    out["ok"] = Json(true);
    std::ostringstream hex;
    hex << std::hex << checksum;
    out["checksum"] = Json(hex.str());
    out["builds"] = Json(static_cast<double>(counters.builds));
    out["tuner_runs"] = Json(static_cast<double>(counters.tuner_runs));
    out["daemon_hits"] = Json(static_cast<double>(counters.daemon_hits));
    out["daemon_misses"] = Json(static_cast<double>(counters.daemon_misses));
    out["artifact_loads"] =
        Json(static_cast<double>(counters.artifact_loads));
    out["db_hits"] = Json(static_cast<double>(counters.db_hits));
  } catch (const augem::Error& e) {
    out["ok"] = Json(false);
    out["error"] = Json(std::string(e.what()));
  }
  std::ofstream f(out_path, std::ios::trunc);
  f << out.dump() << "\n";
  return out.boolean("ok").value_or(false) ? 0 : 1;
}

// ---- parent role -----------------------------------------------------------

pid_t spawn(const std::vector<std::string>& argv_strs) {
  std::vector<char*> argv;
  for (const auto& s : argv_strs) argv.push_back(const_cast<char*>(s.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  return pid;
}

Json read_json_file(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  const auto doc = augem::parse_json(ss.str());
  SMOKE_CHECK(doc.has_value(), "client output %s is not JSON: '%s'",
              path.c_str(), ss.str().c_str());
  return *doc;
}

std::uint64_t counter(const Json& j, const char* field) {
  return static_cast<std::uint64_t>(j.number(field).value_or(-1.0));
}

std::uint64_t stats_counter(const Json& stats, const char* section,
                            const char* field) {
  const Json* s = stats.get(section);
  SMOKE_CHECK(s != nullptr, "daemon stats missing section %s", section);
  return static_cast<std::uint64_t>(s->number(field).value_or(-1.0));
}

struct ClientBatch {
  std::vector<pid_t> pids;
  std::vector<std::string> outs;
};

ClientBatch launch_clients(const std::string& self, const std::string& dir,
                           int count, bool barrier,
                           const std::string& tag) {
  long long start_at = 0;
  if (barrier) {
    start_at = std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count() +
               2000;
  }
  ClientBatch batch;
  for (int i = 0; i < count; ++i) {
    const std::string out = dir + "/client_" + tag + "_" +
                            std::to_string(i) + ".json";
    batch.outs.push_back(out);
    batch.pids.push_back(spawn({self, "--client", "--dir", dir, "--start-at",
                                std::to_string(start_at), "--out", out}));
  }
  return batch;
}

std::vector<Json> collect(const ClientBatch& batch) {
  for (const pid_t pid : batch.pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    SMOKE_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                "client pid %d exited with status %d", pid, status);
  }
  std::vector<Json> results;
  for (const auto& path : batch.outs) results.push_back(read_json_file(path));
  return results;
}

int run_parent(const std::string& self, const std::string& serviced) {
  char tmpl[] = "/tmp/augem_service_smoke_XXXXXX";
  SMOKE_CHECK(::mkdtemp(tmpl) != nullptr, "mkdtemp failed");
  const std::string dir = tmpl;

  // Make sure no inherited policy interferes with the staged scenario.
  ::unsetenv("AUGEM_NO_DAEMON");
  ::unsetenv("AUGEM_DAEMON");
  ::unsetenv("AUGEM_CACHE_DIR");
  ::unsetenv("AUGEM_DISABLE_TUNE_CACHE");

  // Stage 1: a real daemon process on the private dir. Retuning stays
  // enabled but on an interval that never fires during the test.
  const pid_t daemon_pid = spawn(
      {serviced, "--dir", dir, "--quick", "--retune-interval", "3600"});
  std::unique_ptr<augem::service::ServiceClient> probe;
  for (int i = 0; i < 200 && probe == nullptr; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    augem::service::ClientOptions o;
    o.cache_dir = dir;
    probe = augem::service::ServiceClient::try_connect(o);
  }
  SMOKE_CHECK(probe != nullptr, "daemon did not come up in %s", dir.c_str());
  std::fprintf(stderr, "[smoke] daemon up (pid %d)\n", daemon_pid);

  // Stage 2: 8 cold clients behind a start barrier.
  const auto cold = collect(launch_clients(self, dir, 8, true, "cold"));
  const std::string checksum = *cold[0].string("checksum");
  for (const Json& r : cold) {
    SMOKE_CHECK(*r.string("checksum") == checksum,
                "cold clients disagree: %s vs %s",
                r.string("checksum")->c_str(), checksum.c_str());
    SMOKE_CHECK(counter(r, "builds") == 0, "cold client built locally");
    SMOKE_CHECK(counter(r, "tuner_runs") == 0, "cold client ran the tuner");
    SMOKE_CHECK(counter(r, "daemon_hits") == 2,
                "cold client daemon_hits=%llu",
                (unsigned long long)counter(r, "daemon_hits"));
    SMOKE_CHECK(counter(r, "artifact_loads") == 2,
                "cold client artifact_loads=%llu",
                (unsigned long long)counter(r, "artifact_loads"));
  }
  std::fprintf(stderr, "[smoke] 8 cold clients: checksum %s, zero builds\n",
               checksum.c_str());

  auto stats = probe->stats();
  SMOKE_CHECK(stats.has_value(), "stats request failed");
  SMOKE_CHECK(stats_counter(*stats, "counters", "resolves") == 16,
              "daemon resolves=%llu, want 16",
              (unsigned long long)stats_counter(*stats, "counters",
                                                "resolves"));
  // Exactly one build per key machine-wide: two keys, two builds, and at
  // least one of the 16 concurrent resolves piggybacked on a build that
  // was already in flight.
  SMOKE_CHECK(stats_counter(*stats, "runtime", "builds") == 2,
              "daemon builds=%llu, want 2",
              (unsigned long long)stats_counter(*stats, "runtime", "builds"));
  SMOKE_CHECK(stats_counter(*stats, "runtime", "tuner_runs") == 2,
              "daemon tuner_runs=%llu, want 2",
              (unsigned long long)stats_counter(*stats, "runtime",
                                                "tuner_runs"));
  SMOKE_CHECK(stats_counter(*stats, "counters", "builds_deduped") >= 1,
              "no resolve overlapped an in-flight build (deduped=%llu)",
              (unsigned long long)stats_counter(*stats, "counters",
                                                "builds_deduped"));

  // Stage 3: warm clients.
  const auto warm = collect(launch_clients(self, dir, 4, false, "warm"));
  for (const Json& r : warm) {
    SMOKE_CHECK(*r.string("checksum") == checksum, "warm checksum mismatch");
    SMOKE_CHECK(counter(r, "builds") == 0, "warm client built locally");
    SMOKE_CHECK(counter(r, "artifact_loads") == 2,
                "warm client did not use the artifact");
  }
  stats = probe->stats();
  SMOKE_CHECK(stats_counter(*stats, "counters", "resolves") == 24,
              "daemon resolves after warm batch != 24");
  SMOKE_CHECK(stats_counter(*stats, "runtime", "builds") == 2,
              "daemon rebuilt for warm clients");
  std::fprintf(stderr, "[smoke] 4 warm clients served from cache\n");

  // Stage 4: explicit opt-out serves in-process from the shared database
  // file, without touching the daemon.
  ::setenv("AUGEM_NO_DAEMON", "1", 1);
  const auto solo = collect(launch_clients(self, dir, 1, false, "nodaemon"));
  ::unsetenv("AUGEM_NO_DAEMON");
  SMOKE_CHECK(*solo[0].string("checksum") == checksum,
              "AUGEM_NO_DAEMON checksum mismatch");
  SMOKE_CHECK(counter(solo[0], "daemon_hits") == 0,
              "AUGEM_NO_DAEMON client talked to the daemon");
  SMOKE_CHECK(counter(solo[0], "builds") == 2,
              "AUGEM_NO_DAEMON client should build locally");
  SMOKE_CHECK(counter(solo[0], "tuner_runs") == 0,
              "AUGEM_NO_DAEMON client re-tuned despite the shared db");
  SMOKE_CHECK(counter(solo[0], "db_hits") == 2,
              "AUGEM_NO_DAEMON client missed the shared db");
  stats = probe->stats();
  SMOKE_CHECK(stats_counter(*stats, "counters", "resolves") == 24,
              "AUGEM_NO_DAEMON client reached the daemon");
  std::fprintf(stderr, "[smoke] AUGEM_NO_DAEMON fallback matches\n");

  // Stage 5: the parent's own serial reference through the same daemon.
  KernelRuntime parent_rt(quick_config(dir));
  std::ostringstream parent_hex;
  parent_hex << std::hex << compute_checksum(parent_rt);
  SMOKE_CHECK(parent_hex.str() == checksum,
              "serial reference %s != concurrent checksum %s",
              parent_hex.str().c_str(), checksum.c_str());
  SMOKE_CHECK(parent_rt.counters().builds == 0,
              "serial reference built locally");

  // Stage 6: kill the daemon mid-run. The parent's connected client is now
  // talking to a corpse; the next resolve must fall back to the in-process
  // tuner with no error escaping.
  ::kill(daemon_pid, SIGKILL);
  int status = 0;
  ::waitpid(daemon_pid, &status, 0);
  const auto gemv = parent_rt.resolve(KernelKind::kGemv, ShapeClass::kLarge);
  SMOKE_CHECK(gemv != nullptr && gemv->entry != nullptr,
              "post-kill resolve failed");
  const auto pc = parent_rt.counters();
  SMOKE_CHECK(pc.daemon_misses >= 1,
              "dead daemon not recorded as a miss (daemon_misses=%llu)",
              (unsigned long long)pc.daemon_misses);
  SMOKE_CHECK(pc.tuner_runs == 1, "fallback did not tune locally");
  std::fprintf(stderr, "[smoke] daemon killed; live client fell back\n");

  // Stage 7: auto-spawn on first miss in a fresh dir, then a protocol
  // shutdown.
  const std::string dir2 = dir + "/auto";
  ::setenv("AUGEM_DAEMON", "1", 1);
  ::setenv("AUGEM_SERVICED", serviced.c_str(), 1);
  ::setenv("AUGEM_SERVICED_QUICK", "1", 1);
  const auto autod = collect(launch_clients(self, dir2, 1, false, "auto"));
  ::unsetenv("AUGEM_DAEMON");
  ::unsetenv("AUGEM_SERVICED");
  ::unsetenv("AUGEM_SERVICED_QUICK");
  SMOKE_CHECK(counter(autod[0], "daemon_hits") == 2,
              "auto-spawned daemon did not serve the client");
  SMOKE_CHECK(counter(autod[0], "builds") == 0,
              "client built despite auto-spawned daemon");

  augem::service::ClientOptions o2;
  o2.cache_dir = dir2;
  auto probe2 = augem::service::ServiceClient::try_connect(o2);
  SMOKE_CHECK(probe2 != nullptr, "auto-spawned daemon not reachable");
  SMOKE_CHECK(probe2->request_shutdown(), "shutdown request failed");
  bool gone = false;
  for (int i = 0; i < 200 && !gone; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    augem::service::ClientOptions o3;
    o3.cache_dir = dir2;
    gone = augem::service::ServiceClient::try_connect(o3) == nullptr;
  }
  SMOKE_CHECK(gone, "auto-spawned daemon ignored the shutdown request");
  std::fprintf(stderr, "[smoke] auto-spawn + protocol shutdown ok\n");

  // Stage 8: seeded-retune determinism. With a pinned AUGEM_TUNE_SEED (and
  // synthetic scoring + fixed reps to silence measurement noise), the
  // daemon's tuner, an in-process tuner run, and the daemon's retune sweep
  // must all walk the identical trial sequence and land on the identical
  // winner — so a retune of an already-seeded key reports "unchanged".
  const std::string dir3 = dir + "/seeded";
  ::setenv("AUGEM_TUNE_SEED", "424242", 1);
  ::setenv("AUGEM_TUNE_SYNTHETIC", "1", 1);
  ::setenv("AUGEM_BENCH_REPS", "1", 1);
  const pid_t daemon3_pid = spawn(
      {serviced, "--dir", dir3, "--quick", "--retune-interval", "3600"});
  std::unique_ptr<augem::service::ServiceClient> probe3;
  for (int i = 0; i < 200 && probe3 == nullptr; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    augem::service::ClientOptions o4;
    o4.cache_dir = dir3;
    probe3 = augem::service::ServiceClient::try_connect(o4);
  }
  SMOKE_CHECK(probe3 != nullptr, "seeded daemon did not come up");

  // Resolve GEMM through the daemon: its tuner runs the seeded search and
  // the trial log lands in the shared database.
  {
    KernelRuntime rt3(quick_config(dir3));
    const auto k = rt3.resolve(KernelKind::kGemm, ShapeClass::kLarge);
    SMOKE_CHECK(k != nullptr, "seeded resolve failed");
    SMOKE_CHECK(rt3.counters().tuner_runs == 0,
                "seeded client tuned locally instead of via daemon");
  }

  const augem::runtime::KernelKey gemm_key =
      augem::runtime::host_kernel_key(KernelKind::kGemm, ShapeClass::kLarge);
  augem::runtime::TuningDatabase db3(dir3);
  augem::runtime::TunedVariant served;
  SMOKE_CHECK(db3.lookup(gemm_key, served), "seeded db entry missing");
  SMOKE_CHECK(served.search.has_value(), "seeded entry lost search metadata");
  SMOKE_CHECK(served.search->seed == 424242ull,
              "daemon ignored AUGEM_TUNE_SEED (seed=%llu)",
              (unsigned long long)served.search->seed);
  SMOKE_CHECK(!served.trial_log.empty(), "seeded entry lost the trial log");

  // The in-process reference: identical env → identical trial sequence and
  // winning configuration.
  augem::tuning::TuneWorkload w3;
  w3.mc = 32;
  w3.nc = 32;
  w3.kc = 64;
  w3.vec_len = 2048;
  w3.reps = 1;
  const augem::tuning::TuneResult ref = augem::tuning::tune_gemm(
      gemm_key.isa, w3, augem::tuning::SearchOptions::from_env());
  SMOKE_CHECK(ref.trials.size() == served.trial_log.size(),
              "trial counts diverge: in-process %zu vs daemon %zu",
              ref.trials.size(), served.trial_log.size());
  for (std::size_t i = 0; i < ref.trials.size(); ++i) {
    const auto& a = ref.trials[i];
    const auto& b = served.trial_log[i];
    SMOKE_CHECK(a.params.mr == b.params.mr && a.params.nr == b.params.nr &&
                    a.params.ku == b.params.ku &&
                    a.params.unroll == b.params.unroll &&
                    a.strategy == b.strategy && a.feasible == b.feasible &&
                    a.reason == b.reason,
                "trial %zu diverges: %s vs %s", i, a.describe().c_str(),
                b.describe().c_str());
  }
  SMOKE_CHECK(ref.params.mr == served.params.mr &&
                  ref.params.nr == served.params.nr &&
                  ref.params.ku == served.params.ku &&
                  ref.params.unroll == served.params.unroll,
              "winning configurations diverge");
  std::fprintf(stderr,
               "[smoke] seeded search: %zu identical trials, same winner\n",
               ref.trials.size());

  // The daemon's retune sweep replays the same seeded search, reproduces
  // the incumbent, and must not touch the database.
  const auto outcome = probe3->request_retune(gemm_key);
  SMOKE_CHECK(outcome.has_value(), "retune request failed");
  SMOKE_CHECK(*outcome == "unchanged",
              "seeded retune outcome '%s', want 'unchanged'",
              outcome->c_str());
  db3.reload();
  augem::runtime::TunedVariant after;
  SMOKE_CHECK(db3.lookup(gemm_key, after), "entry vanished after retune");
  SMOKE_CHECK(after.trial_log.size() == served.trial_log.size() &&
                  after.params.mr == served.params.mr,
              "seeded retune mutated the stored entry");
  std::fprintf(stderr, "[smoke] seeded retune reported unchanged\n");

  SMOKE_CHECK(probe3->request_shutdown(), "seeded daemon shutdown failed");
  int st3 = 0;
  ::waitpid(daemon3_pid, &st3, 0);
  ::unsetenv("AUGEM_TUNE_SEED");
  ::unsetenv("AUGEM_TUNE_SYNTHETIC");
  ::unsetenv("AUGEM_BENCH_REPS");

  std::printf("service_smoke PASSED\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool client = false;
  std::string dir, out, serviced;
  long long start_at = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--client") client = true;
    else if (arg == "--dir" && i + 1 < argc) dir = argv[++i];
    else if (arg == "--out" && i + 1 < argc) out = argv[++i];
    else if (arg == "--start-at" && i + 1 < argc) start_at = std::atoll(argv[++i]);
    else if (arg == "--serviced" && i + 1 < argc) serviced = argv[++i];
    else {
      std::fprintf(stderr, "unknown arg %s\n", arg.c_str());
      return 2;
    }
  }
  if (client) return run_client(dir, start_at, out);
  if (serviced.empty()) {
    std::fprintf(stderr,
                 "usage: service_smoke --serviced <augem_serviced>\n");
    return 2;
  }
  return run_parent("/proc/self/exe", serviced);
}
