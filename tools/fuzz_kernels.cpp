// Differential fuzzer CLI for the codegen pipeline (see src/check/fuzz.hpp
// and docs/correctness.md). Exit code 0 when every case agreed, 1 when any
// mismatch was found, 2 on usage errors.
//
// Typical runs:
//   fuzz_kernels --cases 1000 --seed 7
//   fuzz_kernels --seed 7 --case 123        # replay one failing case
//   fuzz_kernels --json report.json --quiet

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "check/fuzz.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --seed N           master seed (default 1)\n"
      << "  --cases N          number of cases (default 1000)\n"
      << "  --case I           run only case index I (reproducer mode)\n"
      << "  --time-budget S    stop early after S seconds\n"
      << "  --max-failures N   stop after N failures (default 16)\n"
      << "  --json PATH        write the machine-readable report to PATH\n"
      << "  --no-interp | --no-vm | --no-jit | --no-driver | --no-blas\n"
      << "  --no-batch | --no-level3 | --no-semantics\n"
      << "                     disable individual execution paths\n"
      << "  --no-shrink        report original instances without minimizing\n"
      << "  --quiet            suppress progress/failure narration\n";
  return 2;
}

bool parse_i64(const char* s, std::int64_t& out) {
  char* end = nullptr;
  out = std::strtoll(s, &end, 10);
  return end != nullptr && *end == '\0' && end != s;
}

bool parse_f64(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != nullptr && *end == '\0' && end != s;
}

}  // namespace

int main(int argc, char** argv) {
  augem::check::FuzzOptions opts;
  std::string json_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::int64_t iv = 0;
    double dv = 0;
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr || !parse_i64(v, iv)) return usage(argv[0]);
      opts.seed = static_cast<std::uint64_t>(iv);
    } else if (arg == "--cases") {
      const char* v = next();
      if (v == nullptr || !parse_i64(v, opts.cases)) return usage(argv[0]);
    } else if (arg == "--case") {
      const char* v = next();
      if (v == nullptr || !parse_i64(v, opts.only_case)) return usage(argv[0]);
    } else if (arg == "--time-budget") {
      const char* v = next();
      if (v == nullptr || !parse_f64(v, dv)) return usage(argv[0]);
      opts.time_budget_seconds = dv;
    } else if (arg == "--max-failures") {
      const char* v = next();
      if (v == nullptr || !parse_i64(v, opts.max_failures))
        return usage(argv[0]);
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      json_path = v;
    } else if (arg == "--no-interp") {
      opts.run_interp = false;
    } else if (arg == "--no-vm") {
      opts.run_vm = false;
    } else if (arg == "--no-jit") {
      opts.run_jit = false;
    } else if (arg == "--no-driver") {
      opts.run_driver = false;
    } else if (arg == "--no-blas") {
      opts.run_blas = false;
    } else if (arg == "--no-batch") {
      opts.run_batch = false;
    } else if (arg == "--no-level3") {
      opts.run_level3 = false;
    } else if (arg == "--no-semantics") {
      opts.run_semantics = false;
    } else if (arg == "--no-shrink") {
      opts.shrink = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (!quiet) opts.log = &std::cerr;

  const augem::check::FuzzReport rep = augem::check::run_fuzz(opts);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 2;
    }
    out << rep.to_json() << "\n";
  }

  if (!quiet) {
    std::cerr << "seed " << rep.seed << ": " << rep.cases_run << " cases, "
              << rep.configs_rejected << " configs rejected, "
              << rep.failures.size() << " failures\n";
    for (const auto& [path, runs] : rep.path_runs)
      std::cerr << "  " << path << ": " << runs << " runs\n";
  }
  if (!rep.ok()) {
    for (const auto& f : rep.failures)
      std::cout << "FAIL case " << f.case_index << " [" << f.path << "] "
                << f.config << " | " << f.instance << " | " << f.detail
                << "\n    reproduce: fuzz_kernels --seed " << rep.seed
                << " --case " << f.case_index << "\n";
    return 1;
  }
  std::cout << "OK: " << rep.cases_run << " cases, no mismatches\n";
  return 0;
}
