// augemc — command-line front door to the AUGEM kernel generator.
//
//   augemc [options]
//     --kernel gemm|gemv|axpy|dot|scal   kernel to generate (default gemm)
//     --isa sse2|avx|fma3|fma4           target ISA (default: host best)
//     --stage simple|optc|tagged|asm     artifact to print (default asm)
//     --mr N --nr N --ku N               GEMM register tile / inner unroll
//     --unroll N                         Level-1/2 unroll factor
//     --strategy vdup|shuf|scalar|auto   vectorization strategy
//     --layout rowpanel|colmajor         packed-B layout (GEMM)
//     --no-prefetch / --prefetch N       software prefetching
//     --no-schedule                      disable instruction scheduling
//     --run N                            JIT the kernel and time it on a
//                                        synthetic workload of size N
//     -o FILE                            write to FILE instead of stdout
//     --help
//
// Examples:
//   augemc --kernel gemm --isa fma4 --mr 8 --nr 4            # AMD-style asm
//   augemc --kernel dot --stage tagged                       # Fig. 14 view
//   augemc --kernel gemm --run 768                           # generate+time

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "augem/augem.hpp"
#include "match/identifier.hpp"
#include "support/buffer.hpp"
#include "support/flops.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

using namespace augem;
using frontend::KernelKind;

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr, R"(augemc — AUGEM kernel generator
usage: augemc [--kernel K] [--isa I] [--stage S] [tile options] [-o FILE]
  --kernel gemm|gemv|axpy|dot|scal    (default gemm)
  --isa sse2|avx|fma3|fma4            (default: best host ISA)
  --stage simple|optc|tagged|asm      (default asm)
  --mr N --nr N --ku N --unroll N
  --strategy vdup|shuf|scalar|auto
  --layout rowpanel|colmajor
  --no-prefetch | --prefetch DIST
  --no-schedule
  --run N        JIT + time on a synthetic size-N workload (native ISAs)
  -o FILE        output file (default stdout)
)");
  std::exit(code);
}

std::optional<KernelKind> parse_kernel(const std::string& s) {
  for (KernelKind k : {KernelKind::kGemm, KernelKind::kGemv, KernelKind::kAxpy,
                       KernelKind::kDot, KernelKind::kScal})
    if (s == frontend::kernel_kind_name(k)) return k;
  return std::nullopt;
}

std::optional<Isa> parse_isa(const std::string& s) {
  for (Isa i : {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4}) {
    std::string name = isa_name(i);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    if (s == name) return i;
  }
  return std::nullopt;
}

/// JIT and time one kernel on a synthetic workload; prints MFLOPS.
void run_kernel(const asmgen::GeneratedKernel& gen, KernelKind kind,
                const GenerateOptions& options, long n) {
  if (!host_arch().supports(options.config.isa)) {
    std::fprintf(stderr, "%s is not natively executable on this host\n",
                 isa_name(options.config.isa));
    std::exit(2);
  }
  const jit::CompiledModule mod = jit::assemble(gen.asm_text);
  Rng rng(1);
  double flops = 0.0;
  std::function<void()> work;

  DoubleBuffer a, b, c;
  switch (kind) {
    case KernelKind::kGemm: {
      const long mc = n / options.params.mr * options.params.mr;
      const long nc = n / options.params.nr * options.params.nr;
      const long kc = 256;
      a = DoubleBuffer(static_cast<std::size_t>(mc * kc));
      b = DoubleBuffer(static_cast<std::size_t>(nc * kc));
      c = DoubleBuffer(static_cast<std::size_t>(mc * nc));
      rng.fill(a.span());
      rng.fill(b.span());
      auto* fn = mod.fn<void(long, long, long, const double*, const double*,
                             double*, long)>(gen.name);
      flops = gemm_flops(mc, nc, kc);
      work = [=, &a, &b, &c] {
        fn(mc, nc, kc, a.data(), b.data(), c.data(), mc);
      };
      break;
    }
    case KernelKind::kGemv: {
      a = DoubleBuffer(static_cast<std::size_t>(n * n));
      b = DoubleBuffer(static_cast<std::size_t>(n));
      c = DoubleBuffer(static_cast<std::size_t>(n));
      rng.fill(a.span());
      rng.fill(b.span());
      auto* fn = mod.fn<void(long, long, const double*, long, const double*,
                             double*)>(gen.name);
      flops = gemv_flops(n, n);
      work = [=, &a, &b, &c] { fn(n, n, a.data(), n, b.data(), c.data()); };
      break;
    }
    case KernelKind::kAxpy: {
      a = DoubleBuffer(static_cast<std::size_t>(n));
      b = DoubleBuffer(static_cast<std::size_t>(n));
      rng.fill(a.span());
      auto* fn = mod.fn<void(long, double, const double*, double*)>(gen.name);
      flops = axpy_flops(n);
      work = [=, &a, &b] { fn(n, 1.0000001, a.data(), b.data()); };
      break;
    }
    case KernelKind::kDot: {
      a = DoubleBuffer(static_cast<std::size_t>(n));
      b = DoubleBuffer(static_cast<std::size_t>(n));
      rng.fill(a.span());
      rng.fill(b.span());
      auto* fn = mod.fn<double(long, const double*, const double*)>(gen.name);
      flops = dot_flops(n);
      work = [=, &a, &b] {
        volatile double sink = fn(n, a.data(), b.data());
        (void)sink;
      };
      break;
    }
    case KernelKind::kScal: {
      a = DoubleBuffer(static_cast<std::size_t>(n));
      rng.fill(a.span());
      auto* fn = mod.fn<void(long, double, double*)>(gen.name);
      flops = static_cast<double>(n);
      work = [=, &a] { fn(n, 1.0000001, a.data()); };
      break;
    }
  }
  work();  // warm up
  const double s = time_best_of(5, work);
  std::printf("%s [%s] size %ld: %.1f MFLOPS\n", gen.name.c_str(),
              isa_name(options.config.isa), n, mflops(flops, s));
}

}  // namespace

int main(int argc, char** argv) {
  KernelKind kind = KernelKind::kGemm;
  Isa isa = host_arch().best_native_isa();
  std::string stage = "asm";
  std::string out_path;
  std::optional<long> run_size;
  GenerateOptions options = default_options(kind, isa);
  bool tile_overridden = false;

  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(1);
    return argv[++i];
  };

  // First pass for --kernel/--isa so defaults are computed before overrides.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--kernel") {
      const auto k = parse_kernel(need_value(i));
      if (!k) usage(1);
      kind = *k;
    } else if (arg == "--isa") {
      const auto parsed = parse_isa(need_value(i));
      if (!parsed) usage(1);
      isa = *parsed;
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    }
  }
  options = default_options(kind, isa);

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--kernel" || arg == "--isa") {
      ++i;  // handled above
    } else if (arg == "--stage") {
      stage = need_value(i);
    } else if (arg == "--mr") {
      options.params.mr = std::atoi(need_value(i).c_str());
      tile_overridden = true;
    } else if (arg == "--nr") {
      options.params.nr = std::atoi(need_value(i).c_str());
      tile_overridden = true;
    } else if (arg == "--ku") {
      options.params.ku = std::atoi(need_value(i).c_str());
    } else if (arg == "--unroll") {
      options.params.unroll = std::atoi(need_value(i).c_str());
    } else if (arg == "--strategy") {
      const std::string s = need_value(i);
      if (s == "vdup") options.config.strategy = opt::VecStrategy::kVdup;
      else if (s == "shuf") options.config.strategy = opt::VecStrategy::kShuf;
      else if (s == "scalar") options.config.strategy = opt::VecStrategy::kScalar;
      else if (s == "auto") options.config.strategy = opt::VecStrategy::kAuto;
      else usage(1);
    } else if (arg == "--layout") {
      const std::string s = need_value(i);
      if (s == "rowpanel") options.layout = frontend::BLayout::kRowPanel;
      else if (s == "colmajor") options.layout = frontend::BLayout::kColMajor;
      else usage(1);
    } else if (arg == "--no-prefetch") {
      options.params.prefetch.enabled = false;
    } else if (arg == "--prefetch") {
      options.params.prefetch.enabled = true;
      options.params.prefetch.distance = std::atoi(need_value(i).c_str());
    } else if (arg == "--no-schedule") {
      options.config.schedule = false;
    } else if (arg == "--run") {
      run_size = std::atol(need_value(i).c_str());
    } else if (arg == "-o") {
      out_path = need_value(i);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(1);
    }
  }
  (void)tile_overridden;

  try {
    std::string artifact;
    if (stage == "simple") {
      artifact = frontend::make_kernel(kind, options.layout).to_string();
    } else if (stage == "optc") {
      artifact = transform::generate_optimized_c(kind, options.layout,
                                                 options.params)
                     .to_string();
    } else if (stage == "tagged") {
      ir::Kernel k = transform::generate_optimized_c(kind, options.layout,
                                                     options.params);
      match::identify_templates(k);
      artifact = k.to_string();
    } else if (stage == "asm") {
      artifact = generate_kernel(kind, options).asm_text;
    } else {
      usage(1);
    }

    if (out_path.empty()) {
      std::cout << artifact;
    } else {
      std::ofstream out(out_path);
      out << artifact;
      std::fprintf(stderr, "wrote %zu bytes to %s\n", artifact.size(),
                   out_path.c_str());
    }

    if (run_size) {
      const auto gen = generate_kernel(kind, options);
      run_kernel(gen, kind, options, *run_size);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
