// augem_tunedb — inspect and manage the persistent tuning database
// (docs/runtime.md).
//
//   augem_tunedb [--dir DIR] [--json] list
//   augem_tunedb [--dir DIR] [--json] show <kind> <shape>
//   augem_tunedb [--dir DIR] [--json] prewarm [--quick]
//   augem_tunedb [--dir DIR] [--json] daemon-status
//   augem_tunedb [--dir DIR] purge
//
// `list` prints every stored entry plus the replay-recovery breakdown
// (lines skipped as unparseable / foreign-schema / invalid); `show` prints
// the entry the host's dispatcher would serve for (kind, shape); `prewarm`
// tunes every kernel kind × shape class for the host CPU so later
// processes start warm (--quick uses a reduced timing workload, e.g. for
// CI); `daemon-status` queries the directory's tuning daemon
// (docs/serving.md) for its serving counters; `purge` deletes the database
// file. --dir overrides the directory (default: the AUGEM_CACHE_DIR /
// ~/.cache/augem resolution the runtime itself uses).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/dispatch.hpp"
#include "runtime/json.hpp"
#include "runtime/key.hpp"
#include "runtime/tunedb.hpp"
#include "service/client.hpp"
#include "support/error.hpp"

namespace {

using augem::Isa;
using augem::runtime::DbEntry;
using augem::runtime::Json;
using augem::runtime::KernelKey;
using augem::runtime::KernelRuntime;
using augem::runtime::RuntimeConfig;
using augem::runtime::ShapeClass;
using augem::runtime::TuningDatabase;
namespace frontend = augem::frontend;

int usage() {
  std::fprintf(stderr,
               "usage: augem_tunedb [--dir DIR] [--json] "
               "{list | show <kind> <shape> | prewarm [--quick] | "
               "daemon-status | purge}\n"
               "  kinds:  gemm gemv axpy dot scal\n"
               "  shapes: small skinny large\n");
  return 2;
}

Json entry_json(const DbEntry& e) {
  Json rec = Json::object();
  rec["key"] = Json(e.key.to_string());
  rec["kind"] = Json(frontend::kernel_kind_name(e.key.kind));
  rec["isa"] = Json(augem::isa_name(e.key.isa));
  rec["dtype"] = Json(e.key.dtype);
  rec["shape"] = Json(augem::runtime::shape_class_name(e.key.shape));
  if (e.key.small) {
    // Batched small-GEMM variant: the baked-in extents and fused-epilogue
    // tag are part of the key (distinct entries per variant).
    rec["small"] = Json(e.key.small->to_string());
  }
  rec["cpu"] = Json(e.key.cpu);
  rec["mr"] = Json(e.variant.params.mr);
  rec["nr"] = Json(e.variant.params.nr);
  rec["ku"] = Json(e.variant.params.ku);
  rec["unroll"] = Json(e.variant.params.unroll);
  rec["prefetch"] = Json(e.variant.params.prefetch.enabled);
  rec["strategy"] = Json(augem::opt::vec_strategy_name(e.variant.strategy));
  rec["mflops"] = Json(e.variant.mflops);
  if (e.variant.search) {
    // The codec already knows the search/trial-log shape; lift its section
    // instead of duplicating the field list here.
    const Json full = augem::runtime::encode_tuned_variant(e.variant);
    if (const Json* search = full.get("search")) rec["search"] = *search;
  }
  return rec;
}

void print_search_details(const augem::runtime::TunedVariant& v) {
  if (!v.search) return;
  const augem::tuning::SearchMeta& m = *v.search;
  std::printf("  search: %s seed=%llu trials=%d/%d grid=%d restarts=%d "
              "elapsed=%.2fs%s%s\n",
              m.algorithm.c_str(), static_cast<unsigned long long>(m.seed),
              m.trials_run, m.budget_trials, m.grid_size, m.restarts_used,
              m.elapsed_seconds, m.wall_capped ? " (wall-capped)" : "",
              m.synthetic ? " (synthetic)" : "");
  for (const augem::tuning::Trial& t : v.trial_log)
    std::printf("    %s\n", t.describe().c_str());
}

void print_entry_row(const DbEntry& e) {
  // Batched small-GEMM entries show the baked-in extents + epilogue tag
  // instead of the bare shape class (e.g. "small:16x16x16+bias+relu").
  const std::string shape =
      e.key.small
          ? std::string(augem::runtime::shape_class_name(e.key.shape)) + ":" +
                e.key.small->to_string()
          : std::string(augem::runtime::shape_class_name(e.key.shape));
  std::printf("%-5s %-5s %-26s  mr=%-3d nr=%-3d ku=%-2d unroll=%-3d %-8s "
              "prefetch=%d  %10.1f MFLOPS\n",
              frontend::kernel_kind_name(e.key.kind),
              augem::isa_name(e.key.isa), shape.c_str(),
              e.variant.params.mr, e.variant.params.nr, e.variant.params.ku,
              e.variant.params.unroll,
              augem::opt::vec_strategy_name(e.variant.strategy),
              e.variant.params.prefetch.enabled ? 1 : 0, e.variant.mflops);
}

int cmd_list(TuningDatabase& db, bool json) {
  const std::vector<DbEntry> entries = db.entries();
  const augem::runtime::ReplayStats replay = db.replay_stats();
  if (json) {
    Json out = Json::object();
    out["file"] = Json(db.file_path());
    out["skipped_records"] = Json(static_cast<double>(replay.skipped()));
    out["replay"] = replay.to_json();
    Json arr = Json::array();
    for (const DbEntry& e : entries) arr.push_back(entry_json(e));
    out["entries"] = arr;
    std::printf("%s\n", out.dump().c_str());
    return 0;
  }
  std::printf("database: %s (%zu entries", db.file_path().c_str(),
              entries.size());
  if (replay.skipped() > 0)
    std::printf(
        ", %llu corrupt records skipped: %llu unparseable, %llu foreign "
        "schema, %llu invalid",
        static_cast<unsigned long long>(replay.skipped()),
        static_cast<unsigned long long>(replay.parse_errors),
        static_cast<unsigned long long>(replay.schema_mismatches),
        static_cast<unsigned long long>(replay.invalid_records));
  std::printf(")\n");
  for (const DbEntry& e : entries) print_entry_row(e);
  return 0;
}

int cmd_daemon_status(const std::string& dir, bool json) {
  augem::service::ClientOptions opts;
  opts.cache_dir = dir;
  const auto client = augem::service::ServiceClient::try_connect(opts);
  if (client == nullptr) {
    const std::string resolved =
        dir.empty() ? augem::runtime::default_cache_dir() : dir;
    if (json) {
      Json out = Json::object();
      out["running"] = Json(false);
      out["dir"] = Json(resolved);
      std::printf("%s\n", out.dump().c_str());
    } else {
      std::printf("no daemon serving %s\n", resolved.c_str());
    }
    return 1;
  }
  const auto stats = client->stats();
  if (!stats) {
    std::fprintf(stderr, "daemon stats request failed\n");
    return 1;
  }
  if (json) {
    Json out = *stats;
    out["running"] = Json(true);
    std::printf("%s\n", out.dump().c_str());
    return 0;
  }
  const auto num = [&](const char* section, const char* field) {
    const Json* s = stats->get(section);
    std::optional<double> v;
    if (s != nullptr) v = s->number(field);
    return static_cast<unsigned long long>(v.value_or(0.0));
  };
  std::printf("daemon serving %s (pid %llu, protocol v%llu)\n",
              stats->string("dir").value_or("?").c_str(),
              static_cast<unsigned long long>(
                  stats->number("pid").value_or(0.0)),
              static_cast<unsigned long long>(
                  stats->number("v").value_or(0.0)));
  std::printf(
      "  connections=%llu resolves=%llu resolve_hits=%llu "
      "builds_deduped=%llu publishes=%llu\n",
      num("counters", "connections"), num("counters", "resolves"),
      num("counters", "resolve_hits"), num("counters", "builds_deduped"),
      num("counters", "publishes"));
  std::printf(
      "  retunes=%llu promotions=%llu rejected_promotions=%llu "
      "protocol_errors=%llu\n",
      num("counters", "retunes"), num("counters", "promotions"),
      num("counters", "rejected_promotions"),
      num("counters", "protocol_errors"));
  std::printf("  runtime: tuner_runs=%llu builds=%llu db_hits=%llu\n",
              num("runtime", "tuner_runs"), num("runtime", "builds"),
              num("runtime", "db_hits"));
  std::printf("  code cache: hits=%llu misses=%llu evictions=%llu\n",
              num("code_cache", "hits"), num("code_cache", "misses"),
              num("code_cache", "evictions"));
  return 0;
}

int cmd_show(TuningDatabase& db, bool json, const std::string& kind_name,
             const std::string& shape_name) {
  const auto kind = augem::runtime::parse_kernel_kind(kind_name);
  const auto shape = augem::runtime::parse_shape_class(shape_name);
  if (!kind || !shape) return usage();
  const KernelKey key = augem::runtime::host_kernel_key(*kind, *shape);
  augem::runtime::TunedVariant v;
  if (!db.lookup(key, v)) {
    if (json) {
      Json out = Json::object();
      out["key"] = Json(key.to_string());
      out["found"] = Json(false);
      std::printf("%s\n", out.dump().c_str());
    } else {
      std::printf("no entry for %s\n", key.to_string().c_str());
    }
    return 1;
  }
  DbEntry e;
  e.key = key;
  e.variant = v;
  if (json) {
    Json out = entry_json(e);
    out["found"] = Json(true);
    std::printf("%s\n", out.dump().c_str());
  } else {
    print_entry_row(e);
    print_search_details(v);
  }
  return 0;
}

int cmd_prewarm(const std::string& dir, bool json, bool quick) {
  RuntimeConfig cfg;
  cfg.cache_dir = dir;
  cfg.use_persistent = true;
  if (quick) {
    augem::tuning::TuneWorkload w;
    w.mc = 32;
    w.nc = 32;
    w.kc = 64;
    w.vec_len = 2048;
    w.reps = 1;
    cfg.workload_override = w;
  }
  KernelRuntime rt(cfg);

  // GEMM distinguishes all three shape regimes; the Level-1/2 kernels are
  // classified by traversal length only (small / large).
  struct Job {
    frontend::KernelKind kind;
    ShapeClass shape;
  };
  std::vector<Job> jobs;
  for (ShapeClass s :
       {ShapeClass::kSmall, ShapeClass::kSkinny, ShapeClass::kLarge})
    jobs.push_back({frontend::KernelKind::kGemm, s});
  for (frontend::KernelKind k :
       {frontend::KernelKind::kGemv, frontend::KernelKind::kAxpy,
        frontend::KernelKind::kDot, frontend::KernelKind::kScal})
    for (ShapeClass s : {ShapeClass::kSmall, ShapeClass::kLarge})
      jobs.push_back({k, s});

  Json results = Json::array();
  for (const Job& job : jobs) {
    const auto kernel = rt.resolve(job.kind, job.shape);
    if (json) {
      DbEntry e;
      e.key = kernel->key;
      e.variant = kernel->variant;
      results.push_back(entry_json(e));
    } else {
      std::printf("prewarmed ");
      DbEntry e;
      e.key = kernel->key;
      e.variant = kernel->variant;
      print_entry_row(e);
    }
  }
  const auto counters = rt.counters();
  if (json) {
    Json out = Json::object();
    out["entries"] = results;
    out["tuner_runs"] = Json(static_cast<double>(counters.tuner_runs));
    out["db_hits"] = Json(static_cast<double>(counters.db_hits));
    std::printf("%s\n", out.dump().c_str());
  } else {
    std::printf("%llu tuner runs, %llu already present\n",
                static_cast<unsigned long long>(counters.tuner_runs),
                static_cast<unsigned long long>(counters.db_hits));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  bool json = false;
  bool quick = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir") {
      if (++i >= argc) return usage();
      dir = argv[i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) return usage();

  try {
    const std::string& cmd = args[0];
    if (cmd == "prewarm") return cmd_prewarm(dir, json, quick);
    if (cmd == "daemon-status") return cmd_daemon_status(dir, json);
    TuningDatabase db(dir);
    if (cmd == "list") return cmd_list(db, json);
    if (cmd == "show")
      return args.size() == 3 ? cmd_show(db, json, args[1], args[2]) : usage();
    if (cmd == "purge") {
      db.purge();
      std::printf("purged %s\n", db.file_path().c_str());
      return 0;
    }
    return usage();
  } catch (const augem::Error& e) {
    std::fprintf(stderr, "augem_tunedb: %s\n", e.what());
    return 1;
  }
}
