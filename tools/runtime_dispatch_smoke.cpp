// runtime_dispatch_smoke — the CI gate for the kernel runtime
// (docs/runtime.md): runs one DGEMM through a cold dispatch (empty cache
// directory → tuner → database store → assemble) and again through a warm
// one (fresh store instance on the same directory → database hit, no
// tuner), asserting
//
//   * both dispatched results are bit-identical to the serial reference
//     driver running the same resolved kernel,
//   * the cold runtime recorded tuner runs and the warm one recorded none
//     (warm start across store instances), and
//   * a repeated call inside one runtime is served from the code cache
//     (recorded hit, no additional build).
//
// The cache is redirected to a private mkdtemp directory so the gate
// neither reads nor pollutes the user's ~/.cache/augem.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "augem/augem_blas.hpp"
#include "blas/driver.hpp"
#include "runtime/runtime_blas.hpp"
#include "support/buffer.hpp"
#include "support/rng.hpp"

namespace {

using augem::DoubleBuffer;
using augem::KernelSet;
using augem::Rng;
using augem::blas::index_t;
using augem::blas::Trans;
namespace rt = augem::runtime;

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("%-64s %s\n", what, ok ? "ok" : "FAIL");
  if (!ok) ++g_failures;
}

rt::RuntimeConfig test_config(const std::string& dir) {
  rt::RuntimeConfig cfg;
  cfg.cache_dir = dir;
  cfg.use_persistent = true;  // the point of the smoke test
  augem::tuning::TuneWorkload w;  // reduced workload: CI-speed tuning
  w.mc = 32;
  w.nc = 32;
  w.kc = 64;
  w.vec_len = 2048;
  w.reps = 1;
  cfg.workload_override = w;
  return cfg;
}

/// One fixed ragged DGEMM through `blas`, returning C.
std::vector<double> run_gemm(augem::blas::Blas& blas) {
  const index_t m = 97, n = 83, k = 61, lda = m + 3, ldb = k + 1, ldc = m + 2;
  Rng rng(7);
  DoubleBuffer a(static_cast<std::size_t>(lda * k));
  DoubleBuffer b(static_cast<std::size_t>(ldb * n));
  rng.fill(a.span());
  rng.fill(b.span());
  std::vector<double> c(static_cast<std::size_t>(ldc * n));
  Rng crng(11);
  for (double& v : c) v = crng.uniform(-1.0, 1.0);
  blas.gemm(Trans::kNo, Trans::kNo, m, n, k, 1.25, a.data(), lda, b.data(),
            ldb, 0.75, c.data(), ldc);
  return c;
}

/// The serial reference path for the same problem: the *same* resolved
/// kernel through the serial blocked driver with the same shape-clamped
/// block sizes.
std::vector<double> run_gemm_reference(rt::KernelRuntime& runtime) {
  const index_t m = 97, n = 83, k = 61, lda = m + 3, ldb = k + 1, ldc = m + 2;
  const auto kernel = runtime.resolve(augem::frontend::KernelKind::kGemm,
                                      rt::classify_gemm_shape(m, n, k));
  Rng rng(7);
  DoubleBuffer a(static_cast<std::size_t>(lda * k));
  DoubleBuffer b(static_cast<std::size_t>(ldb * n));
  rng.fill(a.span());
  rng.fill(b.span());
  std::vector<double> c(static_cast<std::size_t>(ldc * n));
  Rng crng(11);
  for (double& v : c) v = crng.uniform(-1.0, 1.0);
  augem::blas::blocked_gemm(
      Trans::kNo, Trans::kNo, m, n, k, 1.25, a.data(), lda, b.data(), ldb,
      0.75, c.data(), ldc,
      augem::blas::serial_gemm_context(augem::blas::block_sizes_for_shape(
          augem::host_arch(), m, n, k)),
      augem::padded_gemm_block_kernel(kernel->fn<KernelSet::GemmFn>(),
                                      kernel->mr, kernel->nr));
  return c;
}

}  // namespace

int main() {
  char dir_template[] = "/tmp/augem_smoke_XXXXXX";
  const char* dir = mkdtemp(dir_template);
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  // Cold: empty directory, so the resolution must tune and store.
  rt::KernelRuntime cold(test_config(dir));
  auto cold_blas = rt::make_runtime_blas(cold);
  const std::vector<double> c_cold = run_gemm(*cold_blas);
  check(cold.counters().tuner_runs >= 1, "cold dispatch invoked the tuner");
  check(cold.counters().builds >= 1, "cold dispatch assembled a kernel");

  const std::vector<double> c_ref = run_gemm_reference(cold);
  check(c_cold.size() == c_ref.size() &&
            std::memcmp(c_cold.data(), c_ref.data(),
                        c_cold.size() * sizeof(double)) == 0,
        "cold dispatched GEMM bit-identical to serial reference");

  // Same runtime again: the kernel must come from the code cache.
  const auto stats_before = cold.code_stats();
  const std::vector<double> c_again = run_gemm(*cold_blas);
  const auto stats_after = cold.code_stats();
  check(stats_after.hits > stats_before.hits,
        "repeated call recorded a code-cache hit");
  check(cold.counters().builds == 1, "repeated call did not rebuild");
  check(std::memcmp(c_again.data(), c_cold.data(),
                    c_cold.size() * sizeof(double)) == 0,
        "repeated call bit-identical");

  // Warm: a second store instance on the same directory must serve the
  // tuned kernel from the database without re-tuning.
  rt::KernelRuntime warm(test_config(dir));
  auto warm_blas = rt::make_runtime_blas(warm);
  const std::vector<double> c_warm = run_gemm(*warm_blas);
  check(warm.counters().tuner_runs == 0,
        "warm store instance did not invoke the tuner");
  check(warm.counters().db_hits >= 1, "warm store instance hit the database");
  check(std::memcmp(c_warm.data(), c_cold.data(),
                    c_cold.size() * sizeof(double)) == 0,
        "warm dispatched GEMM bit-identical to cold");

  // Clean up the private cache directory.
  rt::TuningDatabase(dir).purge();
  ::remove(dir);

  if (g_failures > 0) {
    std::fprintf(stderr, "%d check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("runtime_dispatch_smoke: all checks passed\n");
  return 0;
}
