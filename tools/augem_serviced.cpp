// augem_serviced — the per-machine kernel-tuning daemon (docs/serving.md).
//
//   augem_serviced [--dir DIR] [--quick] [--no-retune]
//                  [--retune-interval SECONDS] [--promote-threshold FRAC]
//
// Owns the tuning database and code cache of one cache directory behind a
// local socket; at most one instance per directory (the flock'd lock file
// decides). Runs until SIGTERM/SIGINT or a client's `shutdown` request.
//
// --quick (or AUGEM_SERVICED_QUICK=1, which the client's auto-spawn path
// inherits) switches to the reduced tuning workload and a minimal
// measurement budget — for tests and CI, where fidelity of the tuned
// numbers does not matter but wall clock does.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "service/daemon.hpp"
#include "support/error.hpp"

namespace {

volatile std::sig_atomic_t g_signaled = 0;

void on_signal(int) { g_signaled = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: augem_serviced [--dir DIR] [--quick] [--no-retune] "
               "[--retune-interval SECONDS] [--promote-threshold FRAC]\n");
  return 2;
}

bool truthy_env(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

}  // namespace

int main(int argc, char** argv) {
  augem::service::DaemonConfig config;
  bool quick = truthy_env("AUGEM_SERVICED_QUICK");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir") {
      if (++i >= argc) return usage();
      config.cache_dir = argv[i];
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--no-retune") {
      config.retune = false;
    } else if (arg == "--retune-interval") {
      if (++i >= argc) return usage();
      config.retune_interval_s = std::atof(argv[i]);
    } else if (arg == "--promote-threshold") {
      if (++i >= argc) return usage();
      config.promote_threshold = std::atof(argv[i]);
    } else {
      return usage();
    }
  }
  if (quick) {
    augem::tuning::TuneWorkload w;
    w.mc = 32;
    w.nc = 32;
    w.kc = 64;
    w.vec_len = 2048;
    w.reps = 1;
    config.workload_override = w;
    config.runner.min_reps = 1;
    config.runner.max_reps = 3;
    config.runner.max_seconds = 0.25;
    config.runner.warmup_max_reps = 1;
    config.runner.check_frequency = false;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    augem::service::Daemon daemon(std::move(config));
    if (!daemon.start()) {
      std::fprintf(stderr, "augem_serviced: %s\n",
                   daemon.last_error().c_str());
      return 1;
    }
    std::fprintf(stderr, "augem_serviced: serving %s\n",
                 daemon.dir().c_str());
    while (g_signaled == 0 && !daemon.shutdown_requested())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    daemon.stop();
  } catch (const augem::Error& e) {
    std::fprintf(stderr, "augem_serviced: %s\n", e.what());
    return 1;
  }
  return 0;
}
