// bench_gate: the perf-regression gate over the shared benchmark suites.
//
// Runs a named suite (src/perf/suites.hpp) through BenchRunner, writes the
// BENCH_<suite>.json trajectory, and — when a baseline is available — diffs
// the fresh run against it with the noise-aware verdict from
// src/perf/report.hpp. Exit status is the contract:
//
//   0  no regression (or no comparable baseline: nothing to gate against)
//   1  at least one row regressed beyond threshold + pooled CI noise
//   2  usage / I/O error
//
//   bench_gate --suite micro --baseline BENCH_micro.json
//   bench_gate --suite micro --write-baseline bench/baselines
//   bench_gate --suite micro --quick --baseline-dir bench/baselines
//   bench_gate --selftest
//
// Baselines are per-machine: a directory baseline is looked up as
// BENCH_<suite>.<machine-signature>.json, and a file baseline whose machine
// signature differs from the host is skipped with a note (exit 0) rather
// than producing a meaningless verdict — use --allow-cross-machine to
// compare anyway. --selftest demonstrates the gate end to end: it records
// a quick baseline with the normal kernel configuration, re-runs the suite
// with the deliberately pessimized configuration (scalar GEMM, no level-1
// unrolling — a >2x slowdown), and succeeds only if the gate fires.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "perf/report.hpp"
#include "perf/suites.hpp"
#include "support/arch.hpp"
#include "support/error.hpp"

namespace {

using namespace augem;
using namespace augem::perf;

int usage() {
  std::fprintf(
      stderr,
      "usage: bench_gate [--suite NAME] [--quick] [--pessimize]\n"
      "                  [--threshold FRAC] [--out DIR]\n"
      "                  [--baseline FILE | --baseline-dir DIR]\n"
      "                  [--allow-cross-machine]\n"
      "                  [--write-baseline DIR]\n"
      "       bench_gate --selftest\n"
      "\n"
      "suites:");
  for (const std::string& s : suite_names()) std::fprintf(stderr, " %s", s.c_str());
  std::fprintf(stderr, "\n");
  return 2;
}

/// Per-machine baseline path inside a baseline directory.
std::string baseline_path_in(const std::string& dir, const std::string& suite) {
  return dir + "/BENCH_" + suite + "." + cpu_signature(host_arch()) + ".json";
}

struct GateArgs {
  std::string suite = "micro";
  std::string baseline_file;
  std::string baseline_dir;
  std::string write_baseline_dir;
  std::string out_dir;
  double threshold = 0.05;
  bool quick = false;
  bool pessimize = false;
  bool allow_cross_machine = false;
  bool selftest = false;
};

/// Runs the suite and writes its trajectory file; `label` only affects the
/// progress line.
BenchReport run_and_write(const GateArgs& args, bool pessimize,
                          const std::string& out_dir, const char* label) {
  SuiteOptions options;
  options.quick = args.quick;
  options.pessimize = pessimize;
  std::fprintf(stderr, "bench_gate: running suite '%s'%s%s...\n",
               args.suite.c_str(), args.quick ? " (quick)" : "", label);
  BenchReport report = run_suite(args.suite, options);
  const std::string path = write_report(report, out_dir);
  std::fprintf(stderr, "bench_gate: wrote %s (%zu rows)\n", path.c_str(),
               report.rows.size());
  return report;
}

int gate(const BenchReport& baseline, const BenchReport& current,
         const GateArgs& args) {
  DiffOptions options;
  options.threshold = args.threshold;
  options.require_same_machine = !args.allow_cross_machine;
  const DiffResult diff = diff_reports(baseline, current, options);
  if (!diff.comparable()) {
    // A baseline from another machine (or schema) says nothing about this
    // run; skipping is the safe verdict for an automated gate.
    std::printf("bench_gate: baseline not comparable (%s); skipping gate\n",
                diff.machine_mismatch ? "different machine signature"
                                      : "different schema version");
    return 0;
  }
  std::fputs(diff.to_string().c_str(), stdout);
  if (diff.any_regression()) {
    std::printf("bench_gate: REGRESSION in suite '%s' (threshold %.0f%% + "
                "pooled CI)\n",
                args.suite.c_str(), 100.0 * args.threshold);
    return 1;
  }
  std::printf("bench_gate: no regression in suite '%s'\n", args.suite.c_str());
  return 0;
}

/// End-to-end demonstration that the gate fires: normal-config baseline vs
/// pessimized rerun must yield a regressed verdict through the exact same
/// diff path the real gate uses. Exit 0 iff the gate fired.
int selftest(GateArgs args) {
  args.quick = true;
  const std::string dir = bench_output_dir();
  const BenchReport baseline = run_and_write(args, /*pessimize=*/false, dir,
                                             " [selftest: baseline config]");
  const BenchReport slow = run_and_write(args, /*pessimize=*/true, dir,
                                         " [selftest: pessimized config]");
  const int rc = gate(baseline, slow, args);
  if (rc != 1) {
    std::fprintf(stderr,
                 "bench_gate: SELFTEST FAILED — pessimized run did not "
                 "trigger the gate (gate rc=%d)\n",
                 rc);
    return 1;
  }
  std::printf("bench_gate: selftest ok — pessimized configuration was "
              "flagged as a regression\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  GateArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--suite") {
      const char* v = value();
      if (!v) return usage();
      args.suite = v;
    } else if (a == "--baseline") {
      const char* v = value();
      if (!v) return usage();
      args.baseline_file = v;
    } else if (a == "--baseline-dir") {
      const char* v = value();
      if (!v) return usage();
      args.baseline_dir = v;
    } else if (a == "--write-baseline") {
      const char* v = value();
      if (!v) return usage();
      args.write_baseline_dir = v;
    } else if (a == "--out") {
      const char* v = value();
      if (!v) return usage();
      args.out_dir = v;
    } else if (a == "--threshold") {
      const char* v = value();
      if (!v) return usage();
      args.threshold = std::atof(v);
    } else if (a == "--quick") {
      args.quick = true;
    } else if (a == "--pessimize") {
      args.pessimize = true;
    } else if (a == "--allow-cross-machine") {
      args.allow_cross_machine = true;
    } else if (a == "--selftest") {
      args.selftest = true;
    } else {
      std::fprintf(stderr, "bench_gate: unknown option '%s'\n", a.c_str());
      return usage();
    }
  }
  if (!is_suite_name(args.suite)) {
    std::fprintf(stderr, "bench_gate: unknown suite '%s'\n",
                 args.suite.c_str());
    return usage();
  }
  if (!args.baseline_file.empty() && !args.baseline_dir.empty()) {
    std::fprintf(stderr,
                 "bench_gate: --baseline and --baseline-dir are exclusive\n");
    return usage();
  }

  try {
    if (args.selftest) return selftest(args);

    // Writing a baseline is a distinct mode: run the suite and store it
    // under the per-machine name, no gating.
    if (!args.write_baseline_dir.empty()) {
      BenchReport report = run_and_write(
          args, args.pessimize,
          args.out_dir.empty() ? bench_output_dir() : args.out_dir, "");
      const std::string path =
          baseline_path_in(args.write_baseline_dir, args.suite);
      std::error_code ec;
      std::filesystem::create_directories(args.write_baseline_dir, ec);
      write_report(report, args.write_baseline_dir);
      // write_report names the file BENCH_<suite>.json; rename to the
      // per-machine baseline name so one directory serves many hosts.
      const std::string generic =
          args.write_baseline_dir + "/" + report.file_name();
      if (generic != path && std::rename(generic.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "bench_gate: failed renaming %s -> %s\n",
                     generic.c_str(), path.c_str());
        return 2;
      }
      std::printf("bench_gate: baseline written to %s\n", path.c_str());
      return 0;
    }

    // Resolve the baseline, if any.
    std::string baseline_path = args.baseline_file;
    if (!args.baseline_dir.empty())
      baseline_path = baseline_path_in(args.baseline_dir, args.suite);
    std::optional<BenchReport> baseline;
    if (!baseline_path.empty()) {
      baseline = load_report(baseline_path);
      if (!baseline && !args.baseline_file.empty()) {
        // An explicitly named baseline that cannot be read is an error; a
        // missing per-machine file in a directory just means "no baseline
        // recorded for this host yet" and the gate is skipped.
        std::fprintf(stderr, "bench_gate: cannot load baseline %s\n",
                     baseline_path.c_str());
        return 2;
      }
      if (!baseline) {
        std::printf("bench_gate: no baseline for this machine (%s); "
                    "skipping gate\n",
                    baseline_path.c_str());
      }
    }

    const BenchReport current = run_and_write(
        args, args.pessimize,
        args.out_dir.empty() ? bench_output_dir() : args.out_dir, "");
    if (!baseline) {
      std::printf("bench_gate: no baseline to compare against; suite ran "
                  "clean\n");
      return 0;
    }
    return gate(*baseline, current, args);
  } catch (const Error& e) {
    std::fprintf(stderr, "bench_gate: %s\n", e.what());
    return 2;
  }
}
