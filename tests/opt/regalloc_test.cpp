#include "opt/regalloc.hpp"

#include <gtest/gtest.h>

#include <set>

namespace augem::opt {
namespace {

TEST(VrAllocator, PerArrayQueuesSeparateArrays) {
  VrAllocator alloc({"A", "B", "C"}, RegAllocPolicy::kPerArrayQueues);
  // Registers handed to different arrays must be distinct, and repeated
  // allocations to one array must also be distinct.
  const Vr a1 = alloc.alloc("A");
  const Vr a2 = alloc.alloc("A");
  const Vr b1 = alloc.alloc("B");
  const Vr c1 = alloc.alloc("C");
  const Vr t1 = alloc.alloc("");
  std::set<Vr> all = {a1, a2, b1, c1, t1};
  EXPECT_EQ(all.size(), 5u);
}

TEST(VrAllocator, ReleaseReturnsToHomeQueue) {
  VrAllocator alloc({"A"}, RegAllocPolicy::kPerArrayQueues);
  const Vr a1 = alloc.alloc("A");
  alloc.release(a1);
  // The same register comes back for the same affinity (front of queue).
  EXPECT_EQ(alloc.alloc("A"), a1);
}

TEST(VrAllocator, DoubleReleaseThrows) {
  VrAllocator alloc({}, RegAllocPolicy::kSinglePool);
  const Vr r = alloc.alloc("");
  alloc.release(r);
  EXPECT_THROW(alloc.release(r), Error);
}

TEST(VrAllocator, StealsWhenQueueExhausted) {
  // With 2 affinities + temp pool, each queue holds ~16/3 registers;
  // drawing 10 for "A" must succeed by stealing.
  VrAllocator alloc({"A", "B"}, RegAllocPolicy::kPerArrayQueues);
  std::set<Vr> got;
  for (int i = 0; i < 10; ++i) got.insert(alloc.alloc("A"));
  EXPECT_EQ(got.size(), 10u);
}

TEST(VrAllocator, ExhaustionThrows) {
  VrAllocator alloc({}, RegAllocPolicy::kSinglePool);
  for (int i = 0; i < kNumVrs; ++i) alloc.alloc("");
  EXPECT_EQ(alloc.free_count(), 0);
  EXPECT_THROW(alloc.alloc(""), Error);
}

TEST(VrAllocator, ReservedRegistersNeverHandedOut) {
  VrAllocator alloc({"A"}, RegAllocPolicy::kPerArrayQueues, {Vr::v0, Vr::v1});
  EXPECT_TRUE(alloc.in_use(Vr::v0));
  EXPECT_TRUE(alloc.in_use(Vr::v1));
  for (int i = 0; i < kNumVrs - 2; ++i) {
    const Vr r = alloc.alloc(i % 2 == 0 ? "A" : "");
    EXPECT_NE(r, Vr::v0);
    EXPECT_NE(r, Vr::v1);
  }
  EXPECT_EQ(alloc.free_count(), 0);
}

TEST(VrAllocator, SinglePoolIgnoresAffinity) {
  VrAllocator alloc({"A", "B"}, RegAllocPolicy::kSinglePool);
  // Sequential allocations come out in register order regardless of array.
  const Vr r0 = alloc.alloc("A");
  const Vr r1 = alloc.alloc("B");
  EXPECT_EQ(index_of(r1), index_of(r0) + 1);
}

TEST(VrAllocator, UnknownAffinityFallsToTempPool) {
  VrAllocator alloc({"A"}, RegAllocPolicy::kPerArrayQueues);
  EXPECT_NO_THROW(alloc.alloc("never-declared"));
}

TEST(RegTable, BindLookupUnbind) {
  RegTable t;
  EXPECT_FALSE(t.contains("res"));
  t.bind("res", Vr::v7);
  EXPECT_TRUE(t.contains("res"));
  EXPECT_EQ(t.lookup("res"), Vr::v7);
  EXPECT_EQ(t.unbind("res"), Vr::v7);
  EXPECT_FALSE(t.contains("res"));
}

TEST(RegTable, ErrorsOnMisuse) {
  RegTable t;
  t.bind("x", Vr::v1);
  EXPECT_THROW(t.bind("x", Vr::v2), Error);  // rebinding
  EXPECT_THROW(t.lookup("y"), Error);
  EXPECT_THROW(t.unbind("y"), Error);
}

TEST(RegTable, BindingsAreDeterministicallyOrdered) {
  RegTable t;
  t.bind("b", Vr::v2);
  t.bind("a", Vr::v1);
  auto it = t.bindings().begin();
  EXPECT_EQ(it->first, "a");
}

}  // namespace
}  // namespace augem::opt
