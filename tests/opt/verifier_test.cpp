#include "opt/verifier.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace augem::opt {
namespace {

MInstList minimal_ok() {
  MInstList l;
  l.push_back(vzero(Vr::v0, 1, false));
  l.push_back(ret());
  return l;
}

bool has_issue(const MInstList& l, const std::string& fragment,
               int f64_params = 0) {
  for (const VerifyIssue& i : verify_machine_code(l, f64_params))
    if (i.message.find(fragment) != std::string::npos) return true;
  return false;
}

TEST(Verifier, CleanFunctionPasses) {
  EXPECT_TRUE(verify_machine_code(minimal_ok()).empty());
  EXPECT_NO_THROW(check_machine_code(minimal_ok()));
}

TEST(Verifier, MissingRetFlagged) {
  MInstList l;
  l.push_back(vzero(Vr::v0, 1, false));
  EXPECT_TRUE(has_issue(l, "no ret"));
}

TEST(Verifier, TwoOperandViolation) {
  MInstList l;
  l.push_back(vzero(Vr::v0, 2, false));
  l.push_back(vzero(Vr::v1, 2, false));
  l.push_back(vzero(Vr::v2, 2, false));
  l.push_back(vmul(Vr::v2, Vr::v0, Vr::v1, 2, false));  // dst != src1, SSE
  l.push_back(ret());
  EXPECT_TRUE(has_issue(l, "dst == src1"));
}

TEST(Verifier, WidthFourRequiresVex) {
  MInstList l;
  MInst bad = vzero(Vr::v0, 4, false);
  l.push_back(bad);
  l.push_back(ret());
  EXPECT_TRUE(has_issue(l, "without VEX"));
}

TEST(Verifier, CondJumpNeedsCompare) {
  MInstList l;
  l.push_back(label("x"));
  l.push_back(jl("x"));  // no compare at all
  l.push_back(ret());
  EXPECT_TRUE(has_issue(l, "without an immediately preceding compare"));
}

TEST(Verifier, ArithmeticInvalidatesFlags) {
  MInstList l;
  l.push_back(imov_imm(Gpr::rax, 0));
  l.push_back(label("x"));
  l.push_back(cmp_imm(Gpr::rax, 5));
  l.push_back(iadd_imm(Gpr::rax, 1));  // clobbers EFLAGS
  l.push_back(jl("x"));
  l.push_back(ret());
  EXPECT_TRUE(has_issue(l, "without an immediately preceding compare"));
}

TEST(Verifier, CommentsDoNotInvalidateFlags) {
  MInstList l;
  l.push_back(imov_imm(Gpr::rax, 0));
  l.push_back(label("x"));
  l.push_back(cmp_imm(Gpr::rax, 5));
  l.push_back(comment("still fine"));
  l.push_back(jl("x"));
  l.push_back(ret());
  EXPECT_TRUE(verify_machine_code(l).empty());
}

TEST(Verifier, UnknownJumpTarget) {
  MInstList l;
  l.push_back(imov_imm(Gpr::rax, 0));
  l.push_back(cmp_imm(Gpr::rax, 5));
  l.push_back(jl("nowhere"));
  l.push_back(ret());
  EXPECT_TRUE(has_issue(l, "unknown label"));
}

TEST(Verifier, UnbalancedPushes) {
  MInstList l;
  l.push_back(push(Gpr::rbx));
  l.push_back(ret());
  EXPECT_TRUE(has_issue(l, "not restored"));
}

TEST(Verifier, PopOrderMismatch) {
  MInstList l;
  l.push_back(push(Gpr::rbx));
  l.push_back(push(Gpr::r12));
  l.push_back(pop(Gpr::rbx));  // should be r12 first
  l.push_back(pop(Gpr::r12));
  l.push_back(ret());
  EXPECT_TRUE(has_issue(l, "pop order mismatch"));
}

TEST(Verifier, UnbalancedFrameAdjustment) {
  MInstList l;
  l.push_back(isub_imm(Gpr::rsp, 64));
  l.push_back(ret());
  EXPECT_TRUE(has_issue(l, "unbalanced stack frame"));
}

TEST(Verifier, BalancedFramePasses) {
  MInstList l;
  l.push_back(push(Gpr::rbx));
  l.push_back(isub_imm(Gpr::rsp, 64));
  l.push_back(imov_imm(Gpr::rbx, 7));
  l.push_back(iadd_imm(Gpr::rsp, 64));
  l.push_back(pop(Gpr::rbx));
  l.push_back(ret());
  EXPECT_TRUE(verify_machine_code(l).empty());
}

TEST(Verifier, UninitializedVectorReadFlagged) {
  MInstList l;
  l.push_back(vmov(Vr::v1, Vr::v9, 2, true));  // v9 never written
  l.push_back(ret());
  EXPECT_TRUE(has_issue(l, "uninitialized vector register"));
}

TEST(Verifier, F64ParamsPreinitializeXmm) {
  MInstList l;
  l.push_back(vmov(Vr::v1, Vr::v0, 1, true));  // xmm0 = alpha argument
  l.push_back(ret());
  EXPECT_TRUE(has_issue(l, "uninitialized vector register", 0));
  EXPECT_FALSE(has_issue(l, "uninitialized vector register", 1));
}

TEST(Verifier, UninitializedGprReadFlagged) {
  MInstList l;
  l.push_back(imov(Gpr::rax, Gpr::r15));  // r15 is not an argument register
  l.push_back(ret());
  EXPECT_TRUE(has_issue(l, "uninitialized register r15"));
}

TEST(Verifier, ArgumentRegistersArePreinitialized) {
  MInstList l;
  l.push_back(imov(Gpr::rax, Gpr::rdi));
  l.push_back(iload(Gpr::rbx, mem_bd(Gpr::rsp, 8)));
  l.push_back(ret());
  EXPECT_TRUE(verify_machine_code(l).empty());
}

// Regression: the pre-CFG verifier walked instructions in emission order, so
// a register defined only on one path looked defined everywhere. The
// analyzer must catch a read whose definition can be jumped over.
TEST(Verifier, GprDefinedOnlyOnOnePathFlagged) {
  MInstList l;
  l.push_back(imov_imm(Gpr::rax, 0));
  l.push_back(cmp_imm(Gpr::rax, 5));
  l.push_back(jge("skip"));
  l.push_back(imov_imm(Gpr::rbx, 1));  // defined only on the fallthrough
  l.push_back(label("skip"));
  l.push_back(imov(Gpr::rcx, Gpr::rbx));  // uninitialized via the jump
  l.push_back(ret());
  EXPECT_TRUE(has_issue(l, "uninitialized register rbx"));
}

// Regression: a vector register written only inside a pre-guarded loop is
// undefined after it when the loop runs zero iterations — in emission order
// the write precedes the read, so the old verifier accepted this.
TEST(Verifier, PostLoopReadOfLoopOnlyVectorFlagged) {
  MInstList l;
  l.push_back(imov_imm(Gpr::rax, 0));
  l.push_back(cmp_imm(Gpr::rax, 5));
  l.push_back(jge("end"));  // zero-trip path skips the body entirely
  l.push_back(label("body"));
  l.push_back(vzero(Vr::v3, 2, true));
  l.push_back(iadd_imm(Gpr::rax, 1));
  l.push_back(cmp_imm(Gpr::rax, 5));
  l.push_back(jl("body"));
  l.push_back(label("end"));
  l.push_back(vmov(Vr::v1, Vr::v3, 2, true));
  l.push_back(ret());
  EXPECT_TRUE(has_issue(l, "uninitialized vector register"));
}

// The dual: a definition that dominates the read through both paths of a
// diamond must NOT be flagged (no straight-line false positive either).
TEST(Verifier, DominatingDefinitionAcrossJoinPasses) {
  MInstList l;
  l.push_back(imov_imm(Gpr::rbx, 1));  // dominates everything below
  l.push_back(imov_imm(Gpr::rax, 0));
  l.push_back(cmp_imm(Gpr::rax, 5));
  l.push_back(jge("skip"));
  l.push_back(iadd_imm(Gpr::rbx, 1));
  l.push_back(label("skip"));
  l.push_back(imov(Gpr::rcx, Gpr::rbx));
  l.push_back(ret());
  EXPECT_TRUE(verify_machine_code(l).empty());
}

TEST(Verifier, CheckThrowsWithIndexedMessages) {
  MInstList l;
  l.push_back(push(Gpr::rbx));
  l.push_back(ret());
  try {
    check_machine_code(l);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("[1]"), std::string::npos);
  }
}

}  // namespace
}  // namespace augem::opt
