// Golden tests for the instruction-selection rules — the executable form of
// the paper's Tables 1-4. Each rule is checked both textually (the exact
// instruction sequence) and semantically (executed in the VM).

#include "opt/isel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "asmgen/printer.hpp"
#include "support/error.hpp"
#include "vm/machine.hpp"

namespace augem::opt {
namespace {

std::vector<std::string> lines_of(const MInstList& insts) {
  std::vector<std::string> out;
  for (const MInst& i : insts) out.push_back(asmgen::print_inst(i));
  return out;
}

// ---- Table 1 (and 3): the Mul+Add rows -------------------------------------

TEST(IselTable1, SseRowIsMovMulAdd) {
  MInstList out;
  emit_mul_add(out, Isa::kSse2, 2, Vr::v0, Vr::v1, Vr::v3, Vr::v2);
  EXPECT_EQ(lines_of(out), (std::vector<std::string>{
                               "movapd %xmm1, %xmm2",
                               "mulpd %xmm0, %xmm2",
                               "addpd %xmm2, %xmm3",
                           }));
}

TEST(IselTable1, AvxRowIsMulAdd) {
  MInstList out;
  emit_mul_add(out, Isa::kAvx, 4, Vr::v0, Vr::v1, Vr::v3, Vr::v2);
  EXPECT_EQ(lines_of(out), (std::vector<std::string>{
                               "vmulpd %ymm1, %ymm0, %ymm2",
                               "vaddpd %ymm2, %ymm3, %ymm3",
                           }));
}

TEST(IselTable1, Fma3RowIsSingleFused) {
  MInstList out;
  emit_mul_add(out, Isa::kFma3, 4, Vr::v0, Vr::v1, Vr::v3, Vr::kNoVr);
  EXPECT_EQ(lines_of(out), (std::vector<std::string>{
                               "vfmadd231pd %ymm1, %ymm0, %ymm3",
                           }));
}

TEST(IselTable1, Fma4RowIsSingleFourOperand) {
  MInstList out;
  emit_mul_add(out, Isa::kFma4, 4, Vr::v0, Vr::v1, Vr::v3, Vr::kNoVr);
  EXPECT_EQ(lines_of(out), (std::vector<std::string>{
                               "vfmaddpd %ymm3, %ymm1, %ymm0, %ymm3",
                           }));
}

TEST(IselTable1, TempRequiredOnlyForNonFused) {
  EXPECT_TRUE(needs_mul_temp(Isa::kSse2));
  EXPECT_TRUE(needs_mul_temp(Isa::kAvx));
  EXPECT_FALSE(needs_mul_temp(Isa::kFma3));
  EXPECT_FALSE(needs_mul_temp(Isa::kFma4));
  MInstList out;
  EXPECT_THROW(emit_mul_add(out, Isa::kSse2, 2, Vr::v0, Vr::v1, Vr::v3,
                            Vr::kNoVr),
               Error);
}

/// Semantics: acc += a*b on every ISA, executed in the VM.
TEST(IselTable1, AllRowsComputeMulAdd) {
  for (Isa isa : {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4}) {
    const int w = isa_vector_doubles(isa);
    double a[4] = {1, 2, 3, 4};
    double b[4] = {10, 20, 30, 40};
    double acc[4] = {100, 100, 100, 100};
    MInstList insts;
    // Load operands, run the rule, store the accumulator back.
    insts.push_back(vload(Vr::v0, mem_bd(Gpr::rdi, 0), w, isa_is_vex(isa)));
    insts.push_back(vload(Vr::v1, mem_bd(Gpr::rsi, 0), w, isa_is_vex(isa)));
    insts.push_back(vload(Vr::v3, mem_bd(Gpr::rdx, 0), w, isa_is_vex(isa)));
    emit_mul_add(insts, isa, w, Vr::v0, Vr::v1, Vr::v3, Vr::v2);
    insts.push_back(vstore(Vr::v3, mem_bd(Gpr::rdx, 0), w, isa_is_vex(isa)));
    insts.push_back(ret());
    vm::Machine m(insts);
    m.call({static_cast<double*>(a), static_cast<double*>(b),
            static_cast<double*>(acc)});
    for (int i = 0; i < w; ++i)
      EXPECT_DOUBLE_EQ(acc[i], 100.0 + a[i] * b[i]) << isa_name(isa) << i;
    for (int i = w; i < 4; ++i) EXPECT_DOUBLE_EQ(acc[i], 100.0);
  }
}

// ---- Table 2: mmSTORE Load-Add-Store ----------------------------------------

TEST(IselTable2, AddStoreSequence) {
  MInstList out;
  emit_add_store(out, Isa::kAvx, 4, Vr::v1, Vr::v2, mem_bd(Gpr::r9, 8));
  EXPECT_EQ(lines_of(out), (std::vector<std::string>{
                               "vaddpd %ymm2, %ymm1, %ymm1",
                               "vmovupd %ymm1, 8(%r9)",
                           }));
  MInstList sse;
  emit_add_store(sse, Isa::kSse2, 2, Vr::v1, Vr::v2, mem_bd(Gpr::r9, 8));
  EXPECT_EQ(lines_of(sse), (std::vector<std::string>{
                               "addpd %xmm2, %xmm1",
                               "movupd %xmm1, 8(%r9)",
                           }));
}

// ---- Table 4: Vld / Vdup / Shuf ---------------------------------------------

TEST(IselTable4, VdupMapsToMovddupAndVbroadcastsd) {
  MInstList sse, avx;
  emit_broadcast(sse, Isa::kSse2, 2, Vr::v4, mem_bd(Gpr::r8, 0));
  emit_broadcast(avx, Isa::kAvx, 4, Vr::v4, mem_bd(Gpr::r8, 0));
  EXPECT_EQ(lines_of(sse)[0], "movddup (%r8), %xmm4");
  EXPECT_EQ(lines_of(avx)[0], "vbroadcastsd (%r8), %ymm4");
}

TEST(IselTable4, RotationSemantics) {
  // dst[i] = src[(i + r) mod w] on every vector ISA.
  for (Isa isa : {Isa::kSse2, Isa::kAvx}) {
    const int w = isa_vector_doubles(isa);
    for (int r = 1; r < w; ++r) {
      double src[4] = {1, 2, 3, 4};
      double dst[4] = {0, 0, 0, 0};
      MInstList insts;
      insts.push_back(vload(Vr::v1, mem_bd(Gpr::rdi, 0), w, isa_is_vex(isa)));
      emit_rotate(insts, isa, w, Vr::v2, Vr::v1, r, Vr::v3);
      insts.push_back(vstore(Vr::v2, mem_bd(Gpr::rsi, 0), w, isa_is_vex(isa)));
      insts.push_back(ret());
      vm::Machine m(insts);
      m.call({static_cast<double*>(src), static_cast<double*>(dst)});
      for (int i = 0; i < w; ++i)
        EXPECT_DOUBLE_EQ(dst[i], src[(i + r) % w])
            << isa_name(isa) << " r=" << r << " lane " << i;
    }
  }
}

TEST(IselTable4, LaneGatherPicksDiagonal) {
  // Four source registers, dst[i] = srcs[i][i].
  double mem[16];
  for (int i = 0; i < 16; ++i) mem[i] = i;
  double dst[4] = {0, 0, 0, 0};
  MInstList insts;
  const Vr regs[4] = {Vr::v1, Vr::v2, Vr::v3, Vr::v4};
  for (int g = 0; g < 4; ++g)
    insts.push_back(vload(regs[g], mem_bd(Gpr::rdi, 32 * g), 4, true));
  emit_lane_gather(insts, Isa::kAvx, 4, Vr::v5,
                   {regs[0], regs[1], regs[2], regs[3]});
  insts.push_back(vstore(Vr::v5, mem_bd(Gpr::rsi, 0), 4, true));
  insts.push_back(ret());
  vm::Machine m(insts);
  m.call({static_cast<double*>(mem), static_cast<double*>(dst)});
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(dst[i], 4 * i + i) << i;
}

TEST(IselTable4, LaneGatherWidth2) {
  double mem[4] = {10, 11, 20, 21};
  double dst[2] = {0, 0};
  for (Isa isa : {Isa::kSse2, Isa::kAvx}) {
    MInstList insts;
    insts.push_back(vload(Vr::v1, mem_bd(Gpr::rdi, 0), 2, isa_is_vex(isa)));
    insts.push_back(vload(Vr::v2, mem_bd(Gpr::rdi, 16), 2, isa_is_vex(isa)));
    emit_lane_gather(insts, isa, 2, Vr::v3, {Vr::v1, Vr::v2});
    insts.push_back(vstore(Vr::v3, mem_bd(Gpr::rsi, 0), 2, isa_is_vex(isa)));
    insts.push_back(ret());
    vm::Machine m(insts);
    m.call({static_cast<double*>(mem), static_cast<double*>(dst)});
    EXPECT_DOUBLE_EQ(dst[0], 10);  // srcs[0] lane 0
    EXPECT_DOUBLE_EQ(dst[1], 21);  // srcs[1] lane 1
  }
}

TEST(IselHsum, AllWidthsAndIsas) {
  for (Isa isa : {Isa::kSse2, Isa::kAvx, Isa::kFma3}) {
    const int w = isa_vector_doubles(isa);
    double src[4] = {1.5, 2.25, 3.125, 4.0625};
    double want = 0;
    for (int i = 0; i < w; ++i) want += src[i];
    double dst[1] = {0};
    MInstList insts;
    insts.push_back(vload(Vr::v1, mem_bd(Gpr::rdi, 0), w, isa_is_vex(isa)));
    emit_hsum(insts, isa, w, Vr::v2, Vr::v1, Vr::v3, Vr::v4);
    insts.push_back(vstore(Vr::v2, mem_bd(Gpr::rsi, 0), 1, isa_is_vex(isa)));
    insts.push_back(ret());
    vm::Machine m(insts);
    m.call({static_cast<double*>(src), static_cast<double*>(dst)});
    EXPECT_DOUBLE_EQ(dst[0], want) << isa_name(isa);
  }
}

TEST(IselGuards, RotateValidatesArguments) {
  MInstList out;
  EXPECT_THROW(emit_rotate(out, Isa::kAvx, 4, Vr::v1, Vr::v2, 0, Vr::v3), Error);
  EXPECT_THROW(emit_rotate(out, Isa::kAvx, 4, Vr::v1, Vr::v2, 4, Vr::v3), Error);
  // Odd 256-bit rotations need a distinct temp.
  EXPECT_THROW(emit_rotate(out, Isa::kAvx, 4, Vr::v1, Vr::v2, 1, Vr::kNoVr),
               Error);
}

}  // namespace
}  // namespace augem::opt
