#include "opt/schedule.hpp"

#include <gtest/gtest.h>

namespace augem::opt {
namespace {

std::vector<MOp> ops_of(const MInstList& l) {
  std::vector<MOp> out;
  for (const MInst& i : l) out.push_back(i.op);
  return out;
}

TEST(Schedule, HoistsIndependentLoadAboveArithmetic) {
  MInstList l;
  l.push_back(vload(Vr::v0, mem_bd(Gpr::rdi, 0), 4, true));   // load A
  l.push_back(vfma231(Vr::v2, Vr::v0, Vr::v3, 4));            // uses v0
  l.push_back(vload(Vr::v1, mem_bd(Gpr::rsi, 0), 4, true));   // independent
  l.push_back(vfma231(Vr::v4, Vr::v1, Vr::v3, 4));
  schedule_instructions(l);
  // The second load moves ahead of the first FMA.
  EXPECT_EQ(ops_of(l), (std::vector<MOp>{MOp::kVLoad, MOp::kVLoad,
                                         MOp::kVFma231, MOp::kVFma231}));
}

TEST(Schedule, RespectsRegisterDependences) {
  MInstList l;
  l.push_back(vfma231(Vr::v2, Vr::v0, Vr::v1, 4));
  l.push_back(vload(Vr::v0, mem_bd(Gpr::rdi, 0), 4, true));  // WAR on v0
  schedule_instructions(l);
  EXPECT_EQ(l[0].op, MOp::kVFma231);  // load may not jump the anti-dep
}

TEST(Schedule, StoresStayOrderedWithLoads) {
  MInstList l;
  l.push_back(vstore(Vr::v0, mem_bd(Gpr::rdi, 0), 4, true));
  l.push_back(vload(Vr::v1, mem_bd(Gpr::rsi, 0), 4, true));  // may alias
  schedule_instructions(l);
  EXPECT_EQ(l[0].op, MOp::kVStore);
}

TEST(Schedule, ControlFlowIsABarrier) {
  MInstList l;
  l.push_back(vfma231(Vr::v2, Vr::v0, Vr::v1, 4));
  l.push_back(label("L0"));
  l.push_back(vload(Vr::v3, mem_bd(Gpr::rdi, 0), 4, true));
  schedule_instructions(l);
  EXPECT_EQ(l[1].op, MOp::kLabel);
  EXPECT_EQ(l[2].op, MOp::kVLoad);  // stays after the label
}

TEST(Schedule, CounterIncrementStaysBeforeItsCompare) {
  MInstList l;
  l.push_back(iadd_imm(Gpr::rax, 1));
  l.push_back(cmp(Gpr::rax, Gpr::rbx));
  l.push_back(jl("body"));
  l.push_back(label("body"));
  schedule_instructions(l);
  EXPECT_EQ(ops_of(l), (std::vector<MOp>{MOp::kIAddImm, MOp::kCmp, MOp::kJl,
                                         MOp::kLabel}));
}

TEST(Schedule, PrefetchesMayMoveFreely) {
  MInstList l;
  l.push_back(vfma231(Vr::v2, Vr::v0, Vr::v1, 4));
  l.push_back(prefetch(mem_bd(Gpr::rdi, 64), 3));
  l.push_back(vload(Vr::v3, mem_bd(Gpr::rsi, 0), 4, true));
  schedule_instructions(l);
  // The load jumps ahead; the prefetch doesn't block it.
  EXPECT_EQ(l[0].op, MOp::kVLoad);
}

TEST(Schedule, ScratchMemBaseReloadIsOrdered) {
  // A load through r10 must not drift above the instruction that sets r10.
  MInstList l;
  l.push_back(iload(Gpr::r10, mem_bd(Gpr::rsp, 8)));
  l.push_back(vload(Vr::v0, mem_bd(Gpr::r10, 0), 4, true));
  l.push_back(iload(Gpr::r10, mem_bd(Gpr::rsp, 16)));  // WAW + WAR
  l.push_back(vload(Vr::v1, mem_bd(Gpr::r10, 0), 4, true));
  schedule_instructions(l);
  EXPECT_EQ(ops_of(l), (std::vector<MOp>{MOp::kILoad, MOp::kVLoad, MOp::kILoad,
                                         MOp::kVLoad}));
}

TEST(Schedule, DeterministicOnTies) {
  MInstList a, b;
  for (int i = 0; i < 6; ++i) {
    a.push_back(vfma231(vr_at(i), Vr::v14, Vr::v15, 4));
    b.push_back(vfma231(vr_at(i), Vr::v14, Vr::v15, 4));
  }
  schedule_instructions(a);
  schedule_instructions(b);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].vdst, b[i].vdst) << i;
}

}  // namespace
}  // namespace augem::opt
