#include "opt/schedule.hpp"

#include <gtest/gtest.h>

namespace augem::opt {
namespace {

std::vector<MOp> ops_of(const MInstList& l) {
  std::vector<MOp> out;
  for (const MInst& i : l) out.push_back(i.op);
  return out;
}

TEST(Schedule, HoistsIndependentLoadAboveArithmetic) {
  MInstList l;
  l.push_back(vload(Vr::v0, mem_bd(Gpr::rdi, 0), 4, true));   // load A
  l.push_back(vfma231(Vr::v2, Vr::v0, Vr::v3, 4));            // uses v0
  l.push_back(vload(Vr::v1, mem_bd(Gpr::rsi, 0), 4, true));   // independent
  l.push_back(vfma231(Vr::v4, Vr::v1, Vr::v3, 4));
  schedule_instructions(l);
  // The second load moves ahead of the first FMA.
  EXPECT_EQ(ops_of(l), (std::vector<MOp>{MOp::kVLoad, MOp::kVLoad,
                                         MOp::kVFma231, MOp::kVFma231}));
}

TEST(Schedule, RespectsRegisterDependences) {
  MInstList l;
  l.push_back(vfma231(Vr::v2, Vr::v0, Vr::v1, 4));
  l.push_back(vload(Vr::v0, mem_bd(Gpr::rdi, 0), 4, true));  // WAR on v0
  schedule_instructions(l);
  EXPECT_EQ(l[0].op, MOp::kVFma231);  // load may not jump the anti-dep
}

TEST(Schedule, StoresStayOrderedWithLoads) {
  MInstList l;
  l.push_back(vstore(Vr::v0, mem_bd(Gpr::rdi, 0), 4, true));
  l.push_back(vload(Vr::v1, mem_bd(Gpr::rsi, 0), 4, true));  // may alias
  schedule_instructions(l);
  EXPECT_EQ(l[0].op, MOp::kVStore);
}

TEST(Schedule, ControlFlowIsABarrier) {
  MInstList l;
  l.push_back(vfma231(Vr::v2, Vr::v0, Vr::v1, 4));
  l.push_back(label("L0"));
  l.push_back(vload(Vr::v3, mem_bd(Gpr::rdi, 0), 4, true));
  schedule_instructions(l);
  EXPECT_EQ(l[1].op, MOp::kLabel);
  EXPECT_EQ(l[2].op, MOp::kVLoad);  // stays after the label
}

TEST(Schedule, CounterIncrementStaysBeforeItsCompare) {
  MInstList l;
  l.push_back(iadd_imm(Gpr::rax, 1));
  l.push_back(cmp(Gpr::rax, Gpr::rbx));
  l.push_back(jl("body"));
  l.push_back(label("body"));
  schedule_instructions(l);
  EXPECT_EQ(ops_of(l), (std::vector<MOp>{MOp::kIAddImm, MOp::kCmp, MOp::kJl,
                                         MOp::kLabel}));
}

TEST(Schedule, PrefetchesMayMoveFreely) {
  MInstList l;
  l.push_back(vfma231(Vr::v2, Vr::v0, Vr::v1, 4));
  l.push_back(prefetch(mem_bd(Gpr::rdi, 64), 3));
  l.push_back(vload(Vr::v3, mem_bd(Gpr::rsi, 0), 4, true));
  schedule_instructions(l);
  // The load jumps ahead; the prefetch doesn't block it.
  EXPECT_EQ(l[0].op, MOp::kVLoad);
}

TEST(Schedule, ScratchMemBaseReloadIsOrdered) {
  // A load through r10 must not drift above the instruction that sets r10.
  MInstList l;
  l.push_back(iload(Gpr::r10, mem_bd(Gpr::rsp, 8)));
  l.push_back(vload(Vr::v0, mem_bd(Gpr::r10, 0), 4, true));
  l.push_back(iload(Gpr::r10, mem_bd(Gpr::rsp, 16)));  // WAW + WAR
  l.push_back(vload(Vr::v1, mem_bd(Gpr::r10, 0), 4, true));
  schedule_instructions(l);
  EXPECT_EQ(ops_of(l), (std::vector<MOp>{MOp::kILoad, MOp::kVLoad, MOp::kILoad,
                                         MOp::kVLoad}));
}

TEST(Schedule, DeterministicOnTies) {
  MInstList a, b;
  for (int i = 0; i < 6; ++i) {
    a.push_back(vfma231(vr_at(i), Vr::v14, Vr::v15, 4));
    b.push_back(vfma231(vr_at(i), Vr::v14, Vr::v15, 4));
  }
  schedule_instructions(a);
  schedule_instructions(b);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].vdst, b[i].vdst) << i;
}

// ---- port-pressure cost model (docs/tuning.md) ----------------------------

TEST(Schedule, CostTableShapesMatchTheMicroarchitecture) {
  // FMA: 5 cycles on the two FMA ports.
  const OpCost fma = op_cost(vfma231(Vr::v0, Vr::v1, Vr::v2, 4));
  EXPECT_EQ(fma.latency, 5);
  EXPECT_EQ(fma.ports, 0b0000011u);
  // Loads: 6 cycles on the two load ports; stores on the store port.
  const OpCost load = op_cost(vload(Vr::v0, mem_bd(Gpr::rdi, 0), 4, true));
  EXPECT_EQ(load.latency, 6);
  EXPECT_EQ(load.ports, 0b0001100u);
  const OpCost store = op_cost(vstore(Vr::v0, mem_bd(Gpr::rdi, 0), 4, true));
  EXPECT_EQ(store.ports, 0b0010000u);
  // Shuffles live on the shuffle port; prefetches are free load-port ops.
  EXPECT_EQ(op_cost(vshuf(Vr::v0, Vr::v1, Vr::v2, 1, 2, false)).ports,
            0b0100000u);
  EXPECT_EQ(op_cost(prefetch(mem_bd(Gpr::rdi, 64), 3)).latency, 0);
}

TEST(Schedule, BroadcastHoistsLikeALoad) {
  MInstList l;
  l.push_back(vbroadcast(Vr::v0, mem_bd(Gpr::rdi, 0), 4, true));
  l.push_back(vfma231(Vr::v2, Vr::v0, Vr::v3, 4));
  l.push_back(vbroadcast(Vr::v1, mem_bd(Gpr::rsi, 0), 4, true));
  l.push_back(vfma231(Vr::v4, Vr::v1, Vr::v3, 4));
  schedule_instructions(l);
  EXPECT_EQ(ops_of(l), (std::vector<MOp>{MOp::kVBroadcast, MOp::kVBroadcast,
                                         MOp::kVFma231, MOp::kVFma231}));
}

// A serial FMA chain saturates nothing but stalls on latency; independent
// single-cycle work must be pulled into the bubbles between chain links
// instead of trailing the whole chain.
TEST(Schedule, InterleavesIndependentWorkIntoFmaChainBubbles) {
  MInstList l;
  l.push_back(vfma231(Vr::v0, Vr::v8, Vr::v9, 4));   // chain 1
  l.push_back(vfma231(Vr::v0, Vr::v10, Vr::v11, 4)); // chain 2 (RAW on v0)
  l.push_back(vfma231(Vr::v0, Vr::v12, Vr::v13, 4)); // chain 3 (RAW on v0)
  l.push_back(vshuf(Vr::v1, Vr::v8, Vr::v9, 1, 2, false));   // independent
  l.push_back(vshuf(Vr::v2, Vr::v10, Vr::v11, 1, 2, false)); // independent
  l.push_back(vshuf(Vr::v3, Vr::v12, Vr::v13, 1, 2, false)); // independent
  schedule_instructions(l);
  // The first chain link issues at cycle 0, the second not before cycle 5 —
  // so every independent shuffle must be pulled into that bubble instead of
  // trailing the chain.
  std::vector<std::size_t> fma_pos;
  for (std::size_t i = 0; i < l.size(); ++i)
    if (l[i].op == MOp::kVFma231) fma_pos.push_back(i);
  ASSERT_EQ(fma_pos.size(), 3u);
  EXPECT_EQ(fma_pos[1] - fma_pos[0], 4u);  // all 3 shuffles in the bubble
  // The chain links themselves stay in dependence order.
  EXPECT_EQ(l[fma_pos[0]].vsrc1, Vr::v8);
  EXPECT_EQ(l[fma_pos[1]].vsrc1, Vr::v10);
  EXPECT_EQ(l[fma_pos[2]].vsrc1, Vr::v12);
}

// With both FMA ports saturated by independent accumulators, a dependent
// op's extra latency keeps it behind the parallel work (port saturation is
// modeled, not just dependences).
TEST(Schedule, StoresNeverCrossMemoryAccessesInLongSpans) {
  MInstList l;
  l.push_back(vstore(Vr::v0, mem_bd(Gpr::rdi, 0), 4, true));
  l.push_back(vload(Vr::v1, mem_bd(Gpr::rsi, 0), 4, true));
  l.push_back(vstore(Vr::v2, mem_bd(Gpr::rdx, 0), 4, true));
  l.push_back(vload(Vr::v3, mem_bd(Gpr::rcx, 0), 4, true));
  schedule_instructions(l);
  // Every store keeps its position relative to all other memory ops.
  EXPECT_EQ(ops_of(l), (std::vector<MOp>{MOp::kVStore, MOp::kVLoad,
                                         MOp::kVStore, MOp::kVLoad}));
}

// A flags-writing instruction must not drift between the compare and the
// conditional jump it feeds, even when its operands are ready earlier.
TEST(Schedule, CompareStaysLastFlagsWriterBeforeCondJump) {
  MInstList l;
  l.push_back(iload(Gpr::rcx, mem_bd(Gpr::rsp, 8)));  // 5-cycle load
  l.push_back(iadd_imm(Gpr::rcx, 1));                 // flags writer, RAW
  l.push_back(cmp(Gpr::rax, Gpr::rbx));               // ready at cycle 0
  l.push_back(jl("loop"));
  l.push_back(label("loop"));
  schedule_instructions(l);
  // Without the flags edge the cmp would issue first (its operands are
  // ready) and the add would clobber the flags the jump reads.
  EXPECT_EQ(ops_of(l), (std::vector<MOp>{MOp::kILoad, MOp::kIAddImm,
                                         MOp::kCmp, MOp::kJl, MOp::kLabel}));
}

TEST(Schedule, WritesFlagsTable) {
  EXPECT_TRUE(writes_flags(iadd_imm(Gpr::rax, 1)));
  EXPECT_TRUE(writes_flags(cmp(Gpr::rax, Gpr::rbx)));
  EXPECT_TRUE(writes_flags(ineg(Gpr::rax)));
  EXPECT_FALSE(writes_flags(imov(Gpr::rax, Gpr::rbx)));
  EXPECT_FALSE(writes_flags(lea(Gpr::rax, mem_bd(Gpr::rbx, 8))));
  EXPECT_FALSE(writes_flags(vload(Vr::v0, mem_bd(Gpr::rdi, 0), 4, true)));
}

}  // namespace
}  // namespace augem::opt
