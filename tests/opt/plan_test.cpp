#include "opt/plan.hpp"

#include <gtest/gtest.h>

#include "match/identifier.hpp"
#include "transform/ckernel.hpp"

namespace augem::opt {
namespace {

using frontend::BLayout;
using frontend::KernelKind;

struct Prepared {
  ir::Kernel kernel;
  match::MatchResult match;
};

Prepared prepare(KernelKind kind, transform::CGenParams p,
                 BLayout layout = BLayout::kRowPanel) {
  p.prefetch.enabled = false;
  ir::Kernel k = transform::generate_optimized_c(kind, layout, p);
  match::MatchResult m = match::identify_templates(k);
  return {std::move(k), std::move(m)};
}

OptConfig cfg(Isa isa, VecStrategy s = VecStrategy::kAuto) {
  OptConfig c;
  c.isa = isa;
  c.strategy = s;
  return c;
}

TEST(Plan, GemmOuterVdupGroupsAccumulatorsByColumnBlocks) {
  transform::CGenParams p;
  p.mr = 8;
  p.nr = 4;
  Prepared pr = prepare(KernelKind::kGemm, p);
  const VecPlan plan = plan_vectorization(pr.match, cfg(Isa::kFma3));
  // 8 rows / width 4 = 2 row blocks × 4 columns = 8 accumulator groups.
  EXPECT_EQ(plan.groups.size(), 8u);
  EXPECT_EQ(plan.lane_of.size(), 32u);  // every res has a lane
  for (const AccGroup& g : plan.groups) {
    EXPECT_EQ(g.width, 4);
    EXPECT_EQ(g.lanes.size(), 4u);
  }
}

TEST(Plan, GemmWidthFallsBackWhenTileNarrow) {
  transform::CGenParams p;
  p.mr = 2;  // not divisible by the 4-lane AVX width
  p.nr = 2;
  Prepared pr = prepare(KernelKind::kGemm, p);
  const VecPlan plan = plan_vectorization(pr.match, cfg(Isa::kAvx));
  for (const auto& [rid, rp] : plan.regions)
    EXPECT_LE(rp.width, 2);  // falls back to 128-bit lanes
}

TEST(Plan, ScalarStrategyDisablesEverything) {
  transform::CGenParams p;
  p.mr = 4;
  p.nr = 4;
  Prepared pr = prepare(KernelKind::kGemm, p);
  const VecPlan plan =
      plan_vectorization(pr.match, cfg(Isa::kFma3, VecStrategy::kScalar));
  EXPECT_TRUE(plan.groups.empty());
  EXPECT_TRUE(plan.lane_of.empty());
  for (const auto& [rid, rp] : plan.regions) EXPECT_EQ(rp.width, 1);
}

TEST(Plan, ShufRequiresSquareTileAndContiguousB) {
  transform::CGenParams p;
  p.mr = 8;
  p.nr = 4;  // not n×n
  Prepared pr = prepare(KernelKind::kGemm, p);
  EXPECT_THROW(plan_vectorization(pr.match, cfg(Isa::kFma3, VecStrategy::kShuf)),
               Error);

  transform::CGenParams sq;
  sq.mr = 4;
  sq.nr = 4;
  Prepared col = prepare(KernelKind::kGemm, sq, BLayout::kColMajor);
  EXPECT_THROW(plan_vectorization(col.match, cfg(Isa::kFma3, VecStrategy::kShuf)),
               Error);

  Prepared row = prepare(KernelKind::kGemm, sq);
  const VecPlan plan =
      plan_vectorization(row.match, cfg(Isa::kFma3, VecStrategy::kShuf));
  bool any_shuf = false;
  for (const auto& [rid, rp] : plan.regions) any_shuf |= rp.use_shuf;
  EXPECT_TRUE(any_shuf);
}

TEST(Plan, ShufGroupsHoldRotatedDiagonals) {
  transform::CGenParams p;
  p.mr = 4;
  p.nr = 4;
  Prepared pr = prepare(KernelKind::kGemm, p);
  const VecPlan plan =
      plan_vectorization(pr.match, cfg(Isa::kFma3, VecStrategy::kShuf));
  EXPECT_EQ(plan.groups.size(), 4u);  // one per rotation
  // Within one group, all four lanes hold distinct accumulators.
  for (const AccGroup& g : plan.groups) {
    std::set<std::string> s(g.lanes.begin(), g.lanes.end());
    EXPECT_EQ(s.size(), 4u);
  }
}

TEST(Plan, DotSharedAccumulatorGetsPartials) {
  transform::CGenParams p;
  p.unroll = 16;
  Prepared pr = prepare(KernelKind::kDot, p);
  const VecPlan plan = plan_vectorization(pr.match, cfg(Isa::kFma3));
  ASSERT_TRUE(plan.partials_of.count("res"));
  EXPECT_EQ(plan.partials_of.at("res").size(), 4u);  // 16 / width 4
  EXPECT_TRUE(plan.reduce_scalars.count("res"));
}

TEST(Plan, AxpyBroadcastsAlpha) {
  transform::CGenParams p;
  p.unroll = 8;
  Prepared pr = prepare(KernelKind::kAxpy, p);
  const VecPlan plan = plan_vectorization(pr.match, cfg(Isa::kAvx));
  EXPECT_TRUE(plan.broadcast_scals.count("alpha"));
}

TEST(Plan, GemvBroadcastsLoadedScal) {
  transform::CGenParams p;
  p.unroll = 8;
  Prepared pr = prepare(KernelKind::kGemv, p);
  const VecPlan plan = plan_vectorization(pr.match, cfg(Isa::kFma3));
  EXPECT_TRUE(plan.broadcast_scals.count("scal"));
}

TEST(Plan, StoreRegionsInheritAccumulatorWidth) {
  transform::CGenParams p;
  p.mr = 8;
  p.nr = 2;
  Prepared pr = prepare(KernelKind::kGemm, p);
  const VecPlan plan = plan_vectorization(pr.match, cfg(Isa::kFma3));
  int vector_store_regions = 0;
  for (const match::Region& r : pr.match.regions) {
    if (r.kind != match::TemplateKind::kMmStore) continue;
    EXPECT_EQ(plan.regions.at(r.id).width, 4);
    ++vector_store_regions;
  }
  EXPECT_EQ(vector_store_regions, 2);  // one per C cursor
}

TEST(Plan, RegisterBudgetEnforced) {
  // A 32×8 tile needs 64 quarter-width groups — far beyond 16 registers.
  transform::CGenParams p;
  p.mr = 32;
  p.nr = 8;
  Prepared pr = prepare(KernelKind::kGemm, p);
  EXPECT_THROW(plan_vectorization(pr.match, cfg(Isa::kFma3)), Error);
}

TEST(Plan, KuRegionsShareGroups) {
  transform::CGenParams p;
  p.mr = 4;
  p.nr = 2;
  p.ku = 2;
  Prepared pr = prepare(KernelKind::kGemm, p);
  const VecPlan plan = plan_vectorization(pr.match, cfg(Isa::kFma3));
  // Three COMP regions (two unrolled copies + remainder) share the same
  // accumulators: group count stays mr/w * nr = 2.
  EXPECT_EQ(plan.groups.size(), 2u);
}

TEST(Plan, StrategyNames) {
  EXPECT_STREQ(vec_strategy_name(VecStrategy::kAuto), "auto");
  EXPECT_STREQ(vec_strategy_name(VecStrategy::kVdup), "vdup");
  EXPECT_STREQ(vec_strategy_name(VecStrategy::kShuf), "shuf");
  EXPECT_STREQ(vec_strategy_name(VecStrategy::kScalar), "scalar");
}

}  // namespace
}  // namespace augem::opt
