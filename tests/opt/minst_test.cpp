#include "opt/minst.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace augem::opt {
namespace {

bool contains_gpr(const std::vector<Gpr>& v, Gpr g) {
  return std::find(v.begin(), v.end(), g) != v.end();
}
bool contains_vr(const std::vector<Vr>& v, Vr r) {
  return std::find(v.begin(), v.end(), r) != v.end();
}

TEST(MInst, FmaDefUse) {
  // FMA3 accumulator is both read and written.
  const MInst i = vfma231(Vr::v3, Vr::v0, Vr::v1, 4);
  std::vector<Gpr> dg, ug;
  std::vector<Vr> dv, uv;
  defs_of(i, dg, dv);
  uses_of(i, ug, uv);
  EXPECT_TRUE(contains_vr(dv, Vr::v3));
  EXPECT_TRUE(contains_vr(uv, Vr::v0));
  EXPECT_TRUE(contains_vr(uv, Vr::v1));
  EXPECT_TRUE(contains_vr(uv, Vr::v3));
}

TEST(MInst, Fma4ReadsThreeSources) {
  const MInst i = vfma4(Vr::v5, Vr::v0, Vr::v1, Vr::v2, 4);
  std::vector<Gpr> ug;
  std::vector<Vr> uv;
  uses_of(i, ug, uv);
  EXPECT_TRUE(contains_vr(uv, Vr::v0));
  EXPECT_TRUE(contains_vr(uv, Vr::v1));
  EXPECT_TRUE(contains_vr(uv, Vr::v2));
  EXPECT_FALSE(contains_vr(uv, Vr::v5));  // pure destination
}

TEST(MInst, MemOperandBaseAndIndexAreUses) {
  const MInst i = vload(Vr::v0, mem_bis(Gpr::rdi, Gpr::r10, 8, 16), 4, true);
  std::vector<Gpr> ug;
  std::vector<Vr> uv;
  uses_of(i, ug, uv);
  EXPECT_TRUE(contains_gpr(ug, Gpr::rdi));
  EXPECT_TRUE(contains_gpr(ug, Gpr::r10));
}

TEST(MInst, ReadModifyWriteIntegerOps) {
  const MInst i = iadd(Gpr::rax, Gpr::rbx);
  std::vector<Gpr> dg, ug;
  std::vector<Vr> dv, uv;
  defs_of(i, dg, dv);
  uses_of(i, ug, uv);
  EXPECT_TRUE(contains_gpr(dg, Gpr::rax));
  EXPECT_TRUE(contains_gpr(ug, Gpr::rax));
  EXPECT_TRUE(contains_gpr(ug, Gpr::rbx));
}

TEST(MInst, MemoryClassification) {
  EXPECT_TRUE(touches_memory(vload(Vr::v0, mem_bd(Gpr::rdi, 0), 4, true)));
  EXPECT_TRUE(touches_memory(prefetch(mem_bd(Gpr::rdi, 0), 3)));
  EXPECT_FALSE(touches_memory(vmul(Vr::v0, Vr::v1, Vr::v2, 4, true)));
  EXPECT_TRUE(writes_memory(vstore(Vr::v0, mem_bd(Gpr::rdi, 0), 4, true)));
  EXPECT_FALSE(writes_memory(vload(Vr::v0, mem_bd(Gpr::rdi, 0), 4, true)));
  EXPECT_TRUE(writes_memory(istore(Gpr::rax, mem_bd(Gpr::rsp, 8))));
  EXPECT_TRUE(touches_memory(iadd_mem(Gpr::rax, mem_bd(Gpr::rsp, 8))));
  EXPECT_FALSE(writes_memory(iadd_mem(Gpr::rax, mem_bd(Gpr::rsp, 8))));
}

TEST(MInst, ControlClassification) {
  EXPECT_TRUE(is_control(jl("x")));
  EXPECT_TRUE(is_control(label("x")));
  EXPECT_TRUE(is_control(ret()));
  EXPECT_TRUE(is_control(cmp(Gpr::rax, Gpr::rbx)));
  EXPECT_FALSE(is_control(vadd(Vr::v0, Vr::v0, Vr::v1, 4, true)));
  EXPECT_FALSE(is_control(comment("hi")));
}

TEST(MInst, MemHelpers) {
  const Mem m = mem_bd(Gpr::rsi, -8);
  EXPECT_TRUE(m.valid());
  EXPECT_FALSE(m.has_index());
  const Mem mi = mem_bis(Gpr::rsi, Gpr::rcx, 8, 0);
  EXPECT_TRUE(mi.has_index());
  EXPECT_FALSE(Mem{}.valid());
}

TEST(MInst, DebugToStringMentionsOperands) {
  const std::string s = vfma231(Vr::v3, Vr::v0, Vr::v1, 4).to_string();
  EXPECT_NE(s.find("ymm3"), std::string::npos);
  EXPECT_NE(s.find("ymm0"), std::string::npos);
}

}  // namespace
}  // namespace augem::opt
