#include "frontend/kernels.hpp"

#include <gtest/gtest.h>

#include "ir/visit.hpp"

namespace augem::frontend {
namespace {

using namespace augem::ir;

int count_loops(const StmtList& body) {
  int n = 0;
  for_each_stmt(body, [&](const Stmt& s) {
    if (s.kind() == StmtKind::kFor) ++n;
  });
  return n;
}

TEST(Frontend, GemmHasThreeNestedLoops) {
  Kernel k = make_gemm_kernel();
  EXPECT_EQ(k.name(), "dgemm_kernel");
  EXPECT_EQ(count_loops(k.body()), 3);
  EXPECT_EQ(k.params().size(), 7u);
  EXPECT_FALSE(k.return_var().has_value());
}

TEST(Frontend, GemmRowPanelSubscripts) {
  Kernel k = make_gemm_kernel(BLayout::kRowPanel);
  const std::string s = k.to_string();
  EXPECT_NE(s.find("A[((l * mc) + i)]"), std::string::npos);
  EXPECT_NE(s.find("B[((l * nc) + j)]"), std::string::npos);
  EXPECT_NE(s.find("C[((j * ldc) + i)]"), std::string::npos);
}

TEST(Frontend, GemmColMajorMatchesPaperFig12) {
  Kernel k = make_gemm_kernel(BLayout::kColMajor);
  const std::string s = k.to_string();
  // B subscript per paper Fig. 12: B[j*Kc + l].
  EXPECT_NE(s.find("B[((j * kc) + l)]"), std::string::npos);
}

TEST(Frontend, GemmCUpdateIsLoadAddStore) {
  Kernel k = make_gemm_kernel();
  const std::string s = k.to_string();
  EXPECT_NE(s.find("C[((j * ldc) + i)] = (C[((j * ldc) + i)] + res);"),
            std::string::npos);
}

TEST(Frontend, GemvShapeMatchesFig15) {
  Kernel k = make_gemv_kernel();
  EXPECT_EQ(count_loops(k.body()), 2);
  const std::string s = k.to_string();
  EXPECT_NE(s.find("scal = x[i];"), std::string::npos);
  EXPECT_NE(s.find("y[j] = (y[j] + (A[((i * lda) + j)] * scal));"),
            std::string::npos);
}

TEST(Frontend, AxpyShapeMatchesFig16) {
  Kernel k = make_axpy_kernel();
  EXPECT_EQ(count_loops(k.body()), 1);
  const std::string s = k.to_string();
  EXPECT_NE(s.find("y[i] = (y[i] + (x[i] * alpha));"), std::string::npos);
  // alpha is an F64 parameter, passed in xmm0 by the generated code.
  EXPECT_EQ(k.type_of("alpha"), ScalarType::kF64);
}

TEST(Frontend, DotShapeMatchesFig17) {
  Kernel k = make_dot_kernel();
  EXPECT_EQ(count_loops(k.body()), 1);
  ASSERT_TRUE(k.return_var().has_value());
  EXPECT_EQ(*k.return_var(), "res");
  const std::string s = k.to_string();
  EXPECT_NE(s.find("res = (res + (x[i] * y[i]));"), std::string::npos);
}

TEST(Frontend, AllKernelsTypeCheckTheirVariables) {
  for (KernelKind kind :
       {KernelKind::kGemm, KernelKind::kGemv, KernelKind::kAxpy, KernelKind::kDot}) {
    Kernel k = make_kernel(kind);
    // Every variable mentioned anywhere must be declared.
    for_each_expr(k.body(), [&](const Expr& e) {
      if (const auto* v = as<VarRef>(e)) {
        EXPECT_TRUE(k.is_declared(v->name()));
      }
      if (const auto* a = as<ArrayRef>(e)) {
        EXPECT_TRUE(k.is_declared(a->base()));
        EXPECT_EQ(k.type_of(a->base()), ScalarType::kPtrF64);
      }
    });
  }
}

TEST(Frontend, PointerConstnessReflectsWrites) {
  Kernel k = make_gemm_kernel();
  for (const Param& p : k.params()) {
    if (p.name == "A" || p.name == "B") {
      EXPECT_TRUE(p.is_const);
    }
    if (p.name == "C") {
      EXPECT_FALSE(p.is_const);
    }
  }
}

TEST(Frontend, KindNames) {
  EXPECT_STREQ(kernel_kind_name(KernelKind::kGemm), "gemm");
  EXPECT_STREQ(kernel_kind_name(KernelKind::kDot), "dot");
}

}  // namespace
}  // namespace augem::frontend
