#include "support/arch.hpp"

#include <gtest/gtest.h>

namespace augem {
namespace {

TEST(Arch, IsaNamesAreStable) {
  EXPECT_STREQ(isa_name(Isa::kSse2), "SSE2");
  EXPECT_STREQ(isa_name(Isa::kAvx), "AVX");
  EXPECT_STREQ(isa_name(Isa::kFma3), "FMA3");
  EXPECT_STREQ(isa_name(Isa::kFma4), "FMA4");
}

TEST(Arch, VectorWidths) {
  EXPECT_EQ(isa_vector_doubles(Isa::kSse2), 2);
  EXPECT_EQ(isa_vector_doubles(Isa::kAvx), 4);
  EXPECT_EQ(isa_vector_doubles(Isa::kFma3), 4);
  EXPECT_EQ(isa_vector_doubles(Isa::kFma4), 4);
  EXPECT_EQ(isa_vector_bits(Isa::kSse2), 128);
  EXPECT_EQ(isa_vector_bits(Isa::kAvx), 256);
}

TEST(Arch, VexEncoding) {
  EXPECT_FALSE(isa_is_vex(Isa::kSse2));
  EXPECT_TRUE(isa_is_vex(Isa::kAvx));
  EXPECT_TRUE(isa_is_vex(Isa::kFma3));
  EXPECT_TRUE(isa_is_vex(Isa::kFma4));
}

TEST(Arch, HostDetectionIsSane) {
  const CpuArch& a = host_arch();
  EXPECT_TRUE(a.has_sse2);  // x86-64 baseline
  EXPECT_FALSE(a.name.empty());
  EXPECT_GT(a.l1d_bytes, 0);
  EXPECT_GT(a.l2_bytes, 0);
  // best_native_isa must itself be supported.
  EXPECT_TRUE(a.supports(a.best_native_isa()));
}

TEST(Arch, NativeIsasAreOrderedAndSupported) {
  const CpuArch& a = host_arch();
  for (Isa isa : a.native_isas()) EXPECT_TRUE(a.supports(isa));
}

TEST(Arch, SandyBridgeSynthetic) {
  const CpuArch a = sandy_bridge_arch();
  EXPECT_TRUE(a.has_avx);
  EXPECT_FALSE(a.has_fma3);
  EXPECT_FALSE(a.has_fma4);
  EXPECT_EQ(a.best_native_isa(), Isa::kAvx);
}

TEST(Arch, PiledriverSynthetic) {
  const CpuArch a = piledriver_arch();
  EXPECT_TRUE(a.has_fma3);
  EXPECT_TRUE(a.has_fma4);
  // FMA3 preferred (the paper selects the FMA3 code path on Piledriver via
  // ACML_FMA=3; our default mirrors that).
  EXPECT_EQ(a.best_native_isa(), Isa::kFma3);
  EXPECT_EQ(a.l1d_bytes, 16 * 1024);
  EXPECT_EQ(a.l2_bytes, 2048 * 1024);
}

TEST(Arch, ReportMentionsKeyFields) {
  const std::string r = piledriver_arch().report();
  EXPECT_NE(r.find("Piledriver"), std::string::npos);
  EXPECT_NE(r.find("L1d"), std::string::npos);
  EXPECT_NE(r.find("FMA4"), std::string::npos);
}

}  // namespace
}  // namespace augem
