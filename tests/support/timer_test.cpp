#include "support/timer.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace augem {
namespace {

TEST(Timer, ElapsedIsMonotonic) {
  Timer t;
  const double a = t.elapsed_s();
  const double b = t.elapsed_s();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Timer, ResetRestarts) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1;
  t.reset();
  EXPECT_LT(t.elapsed_s(), 1.0);
}

TEST(Timer, BestOfCountsInvocations) {
  int calls = 0;
  time_best_of(5, [&] { ++calls; });
  EXPECT_EQ(calls, 5);
}

TEST(Timer, MeanOfCountsInvocations) {
  int calls = 0;
  time_mean_of(3, [&] { ++calls; });
  EXPECT_EQ(calls, 3);
}

TEST(Timer, BestOfRejectsZeroReps) {
  EXPECT_THROW(time_best_of(0, [] {}), Error);
}

TEST(Timer, MflopsComputesCorrectly) {
  EXPECT_DOUBLE_EQ(mflops(2.0e6, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(mflops(1.0e6, 0.5), 2.0);
  EXPECT_EQ(mflops(1.0e6, 0.0), 0.0);
}

TEST(Timer, BestOfIsAtMostMean) {
  volatile double sink = 0;
  auto work = [&] {
    for (int i = 0; i < 10000; ++i) sink = sink + 1;
  };
  const double best = time_best_of(5, work);
  const double mean = time_mean_of(5, work);
  EXPECT_LE(best, mean * 1.5 + 1e-6);  // generous slack for noise
}

}  // namespace
}  // namespace augem
