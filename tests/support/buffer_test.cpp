#include "support/buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

namespace augem {
namespace {

TEST(AlignedBuffer, DefaultIsEmpty) {
  DoubleBuffer b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBuffer, AllocatesAligned) {
  DoubleBuffer b(1001);
  EXPECT_EQ(b.size(), 1001u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 64, 0u);
}

TEST(AlignedBuffer, ZeroInitialized) {
  DoubleBuffer b(257);
  for (double x : b) EXPECT_EQ(x, 0.0);
}

TEST(AlignedBuffer, OddSizesRoundUpAllocation) {
  // 3 doubles = 24 bytes, not a multiple of 64; must still allocate fine.
  DoubleBuffer b(3);
  b[0] = 1;
  b[2] = 3;
  EXPECT_EQ(b[0] + b[1] + b[2], 4.0);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  DoubleBuffer a(16);
  std::iota(a.begin(), a.end(), 0.0);
  double* p = a.data();
  DoubleBuffer b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(b[15], 15.0);

  DoubleBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBuffer, SpanCoversWholeBuffer) {
  DoubleBuffer b(8);
  auto s = b.span();
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.data(), b.data());
}

TEST(AlignedBuffer, CustomAlignment) {
  AlignedBuffer<double, 4096> page(10);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(page.data()) % 4096, 0u);
}

}  // namespace
}  // namespace augem
