#include "support/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace augem {
namespace {

TEST(Error, CheckPassesOnTrue) {
  EXPECT_NO_THROW(AUGEM_CHECK(1 + 1 == 2, "math works"));
}

TEST(Error, CheckThrowsOnFalse) {
  EXPECT_THROW(AUGEM_CHECK(false, "boom"), Error);
}

TEST(Error, MessageContainsExpressionAndDetail) {
  try {
    const int n = -3;
    AUGEM_CHECK(n > 0, "vector length must be positive, got " << n);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("n > 0"), std::string::npos);
    EXPECT_NE(what.find("got -3"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(Error, CheckWithoutMessage) {
  try {
    AUGEM_CHECK(false);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("false"), std::string::npos);
  }
}

TEST(Error, FailAlwaysThrows) {
  EXPECT_THROW(AUGEM_FAIL("unreachable state " << 17), Error);
}

}  // namespace
}  // namespace augem
