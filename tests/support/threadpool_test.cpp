#include "support/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "support/error.hpp"

namespace augem {
namespace {

TEST(ThreadPool, RunsEveryParticipantExactlyOnce) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](int tid) { hits[static_cast<std::size_t>(tid)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossSubmits) {
  // The same workers must serve many batches: no one-shot state, no leaked
  // epochs. 100 submits each add tid-sums into a shared counter.
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int batch = 0; batch < 100; ++batch)
    pool.run([&](int tid) { total += tid + 1; });
  EXPECT_EQ(total.load(), 100 * (1 + 2 + 3));
}

TEST(ThreadPool, BarrierSeparatesPhases) {
  // Each participant writes its slot, barriers, then reads every other
  // slot: without a correct barrier some thread observes a stale zero.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> written(4, 0);
    std::vector<long> sums(4, -1);
    pool.run([&](int tid) {
      written[static_cast<std::size_t>(tid)] = tid + 1;
      pool.barrier();
      sums[static_cast<std::size_t>(tid)] =
          std::accumulate(written.begin(), written.end(), 0L);
    });
    for (long s : sums) EXPECT_EQ(s, 1 + 2 + 3 + 4) << "round " << round;
  }
}

TEST(ThreadPool, BarrierIsReusableWithinOneSubmit) {
  // Sense reversal: many consecutive barriers in a single task must each
  // separate the phases around them.
  ThreadPool pool(3);
  constexpr int kPhases = 20;
  std::vector<std::vector<int>> phase_counts(
      kPhases, std::vector<int>(3, 0));
  std::atomic<bool> ok{true};
  pool.run([&](int tid) {
    for (int p = 0; p < kPhases; ++p) {
      phase_counts[static_cast<std::size_t>(p)][static_cast<std::size_t>(tid)] = 1;
      pool.barrier();
      int seen = 0;
      for (int v : phase_counts[static_cast<std::size_t>(p)]) seen += v;
      if (seen != 3) ok = false;
      pool.barrier();
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, SingleThreadDegenerateRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int calls = 0;
  pool.run([&](int tid) {
    EXPECT_EQ(tid, 0);
    ++calls;
    pool.barrier();  // must be a no-op, not a deadlock
    pool.barrier();
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run([](int tid) {
                 if (tid == 2) throw Error("boom");
               }),
               Error);
  // The pool stays usable after a failed batch.
  std::atomic<int> count{0};
  pool.run([&](int) { count++; });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, RejectsNonPositiveSize) {
  EXPECT_THROW(ThreadPool pool(0), Error);
}

TEST(ThreadPool, DefaultThreadsHonorsEnvOverride) {
  // Note: ThreadPool::global() latches its size at first use; this checks
  // the resolver, not the global pool.
  setenv("AUGEM_NUM_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_num_threads(), 3);
  setenv("AUGEM_NUM_THREADS", "bogus", 1);
  EXPECT_GE(ThreadPool::default_num_threads(), 1);
  unsetenv("AUGEM_NUM_THREADS");
  EXPECT_GE(ThreadPool::default_num_threads(), 1);
}

}  // namespace
}  // namespace augem
