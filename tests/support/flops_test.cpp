#include "support/flops.hpp"

#include <gtest/gtest.h>

namespace augem {
namespace {

TEST(Flops, Gemm) { EXPECT_DOUBLE_EQ(gemm_flops(10, 20, 30), 12000.0); }

TEST(Flops, Gemv) { EXPECT_DOUBLE_EQ(gemv_flops(100, 50), 10000.0); }

TEST(Flops, Level1) {
  EXPECT_DOUBLE_EQ(axpy_flops(1000), 2000.0);
  EXPECT_DOUBLE_EQ(dot_flops(1000), 2000.0);
}

TEST(Flops, Ger) { EXPECT_DOUBLE_EQ(ger_flops(32, 16), 1024.0); }

TEST(Flops, Symm) { EXPECT_DOUBLE_EQ(symm_flops(8, 4), 512.0); }

TEST(Flops, SyrkCountsTriangle) {
  // n=3, k=2: 3*4*2 = 24 (half of the full 2*n*n*k = 36, plus diagonal).
  EXPECT_DOUBLE_EQ(syrk_flops(3, 2), 24.0);
}

TEST(Flops, Syr2k) { EXPECT_DOUBLE_EQ(syr2k_flops(3, 2), 48.0); }

TEST(Flops, TriangularRoutines) {
  EXPECT_DOUBLE_EQ(trmm_flops(4, 8), 128.0);
  EXPECT_DOUBLE_EQ(trsm_flops(4, 8), 128.0);
}

TEST(Flops, LargeSizesDoNotOverflow) {
  // 6144^2 x 256 exceeds int32 range; double accounting must be exact here.
  EXPECT_DOUBLE_EQ(gemm_flops(6144, 6144, 256), 2.0 * 6144.0 * 6144.0 * 256.0);
}

}  // namespace
}  // namespace augem
