#include "support/scratch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

namespace augem {
namespace {

TEST(Scratch, ReusesAllocationAcrossCalls) {
  double* first = scratch_doubles(128, Scratch::kGemmPackA);
  first[0] = 1.0;
  first[127] = 2.0;
  // Same or smaller request on the same slot returns the cached buffer.
  EXPECT_EQ(scratch_doubles(128, Scratch::kGemmPackA), first);
  EXPECT_EQ(scratch_doubles(16, Scratch::kGemmPackA), first);
}

TEST(Scratch, SlotsAreIndependent) {
  double* a = scratch_doubles(64, Scratch::kGemmPackA);
  double* b = scratch_doubles(64, Scratch::kGemmPackB);
  EXPECT_NE(a, b);
}

TEST(Scratch, IsCacheLineAligned) {
  const double* p = scratch_doubles(8, Scratch::kGemmPadC);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
}

TEST(Scratch, PerThreadBuffersAreDistinct) {
  double* mine = scratch_doubles(32, Scratch::kGemmPadA);
  double* theirs = nullptr;
  std::thread other([&] { theirs = scratch_doubles(32, Scratch::kGemmPadA); });
  other.join();
  EXPECT_NE(mine, theirs);
}

}  // namespace
}  // namespace augem
