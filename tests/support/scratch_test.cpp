#include "support/scratch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "support/error.hpp"

namespace augem {
namespace {

TEST(Scratch, ReusesAllocationAcrossCalls) {
  double* first = scratch_doubles(128, Scratch::kGemmPackA);
  first[0] = 1.0;
  first[127] = 2.0;
  // Same or smaller request on the same slot returns the cached buffer.
  EXPECT_EQ(scratch_doubles(128, Scratch::kGemmPackA), first);
  EXPECT_EQ(scratch_doubles(16, Scratch::kGemmPackA), first);
}

TEST(Scratch, SlotsAreIndependent) {
  double* a = scratch_doubles(64, Scratch::kGemmPackA);
  double* b = scratch_doubles(64, Scratch::kGemmPackB);
  EXPECT_NE(a, b);
}

TEST(Scratch, IsCacheLineAligned) {
  const double* p = scratch_doubles(8, Scratch::kGemmPadC);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
}

TEST(Scratch, PerThreadBuffersAreDistinct) {
  double* mine = scratch_doubles(32, Scratch::kGemmPadA);
  double* theirs = nullptr;
  std::thread other([&] { theirs = scratch_doubles(32, Scratch::kGemmPadA); });
  other.join();
  EXPECT_NE(mine, theirs);
}

TEST(ScratchLease, HoldsAndReleasesSlot) {
  {
    ScratchLease lease(64, Scratch::kLevel3TmpA);
    ASSERT_NE(lease.data(), nullptr);
    lease.data()[0] = 1.0;
    lease.data()[63] = 2.0;
    // A *different* slot is still freely available while this one is held.
    ScratchLease other(16, Scratch::kLevel3TmpB);
    EXPECT_NE(other.data(), lease.data());
  }
  // Both released: re-acquiring must succeed.
  ScratchLease again(64, Scratch::kLevel3TmpA);
  EXPECT_NE(again.data(), nullptr);
}

TEST(ScratchLease, DebugGuardRejectsAcquireWhileHeld) {
  if (!scratch_guard_enabled())
    GTEST_SKIP() << "live-slot accounting compiled out (NDEBUG)";
  ScratchLease held(32, Scratch::kLevel3PackB);
  // Nested lease of the held slot would alias (or, worse, grow and
  // invalidate) the buffer the outer holder points into.
  EXPECT_THROW(ScratchLease(8, Scratch::kLevel3PackB), augem::Error);
  // A raw scratch_doubles on the held slot is the same hazard.
  EXPECT_THROW(scratch_doubles(1024, Scratch::kLevel3PackB), augem::Error);
}

TEST(ScratchLease, GuardIsPerThread) {
  if (!scratch_guard_enabled())
    GTEST_SKIP() << "live-slot accounting compiled out (NDEBUG)";
  ScratchLease held(32, Scratch::kLevel3PackB);
  bool other_thread_ok = false;
  std::thread other([&] {
    // The slot is only leased on *this* thread; workers keep their own.
    ScratchLease mine(32, Scratch::kLevel3PackB);
    other_thread_ok = mine.data() != nullptr && mine.data() != held.data();
  });
  other.join();
  EXPECT_TRUE(other_thread_ok);
}

}  // namespace
}  // namespace augem
