#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace augem {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= (a.uniform() != b.uniform());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRespectsRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, FillCoversWholeSpan) {
  Rng r(9);
  std::vector<double> v(64, 99.0);
  r.fill(v);
  for (double x : v) {
    EXPECT_GE(x, -1.0);
    EXPECT_LT(x, 1.0);
  }
}

}  // namespace
}  // namespace augem
