// Regression tests for the AUGEM wrapper layer's BLAS edge-case semantics.
// The generated kernels are pure accumulators (y += A*x, x *= alpha, …);
// netlib's beta/alpha special cases are the *wrapper's* job, and getting
// them wrong is invisible to random-data tests: the bugs only show against
// NaN/Inf-poisoned outputs or alpha/beta ∈ {0}. Each test here fails on the
// pre-beta_scale wrappers (y[i] *= 0 keeps NaN alive; see
// docs/correctness.md).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "augem/augem_blas.hpp"
#include "blas/reference.hpp"
#include "jit/jit.hpp"
#include "support/rng.hpp"

namespace augem {
namespace {

using blas::index_t;

const double kNaN = std::numeric_limits<double>::quiet_NaN();

class AugemWrapperSemantics : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!jit::toolchain_available())
      GTEST_SKIP() << "no assembler toolchain; AUGEM BLAS needs native kernels";
    lib_ = make_augem_blas();
  }
  std::unique_ptr<blas::Blas> lib_;
  Rng rng_{7};
};

TEST_F(AugemWrapperSemantics, GemvBetaZeroOverwritesNaN) {
  // The generated GEMV kernel accumulates into y, so the wrapper must
  // *clear* y when beta == 0 — scaling (y *= 0) keeps a poisoned y NaN.
  const index_t m = 37, n = 11;
  std::vector<double> a(static_cast<std::size_t>(m * n)),
      x(static_cast<std::size_t>(n));
  rng_.fill(a);
  rng_.fill(x);
  std::vector<double> y(static_cast<std::size_t>(m), kNaN);
  std::vector<double> want(static_cast<std::size_t>(m), 0.0);
  lib_->gemv(m, n, 1.0, a.data(), m, x.data(), 0.0, y.data());
  blas::ref::gemv(m, n, 1.0, a.data(), m, x.data(), 0.0, want.data());
  for (index_t i = 0; i < m; ++i) {
    ASSERT_TRUE(std::isfinite(y[i])) << "y[" << i << "]";
    ASSERT_NEAR(y[i], want[i], 1e-12 * static_cast<double>(n));
  }
}

TEST_F(AugemWrapperSemantics, GemvAlphaZeroSkipsKernel) {
  const index_t m = 8, n = 6;
  std::vector<double> a(static_cast<std::size_t>(m * n), kNaN),
      x(static_cast<std::size_t>(n), kNaN), y(static_cast<std::size_t>(m));
  rng_.fill(y);
  const std::vector<double> y0 = y;
  lib_->gemv(m, n, 0.0, a.data(), m, x.data(), 0.5, y.data());
  for (index_t i = 0; i < m; ++i)
    ASSERT_DOUBLE_EQ(y[i], 0.5 * y0[static_cast<std::size_t>(i)]);
}

TEST_F(AugemWrapperSemantics, GemvNonUnitAlphaFoldsIntoX) {
  const index_t m = 19, n = 9;
  std::vector<double> a(static_cast<std::size_t>(m * n)),
      x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(m));
  rng_.fill(a);
  rng_.fill(x);
  rng_.fill(y);
  std::vector<double> want = y;
  lib_->gemv(m, n, -1.5, a.data(), m, x.data(), 2.0, y.data());
  blas::ref::gemv(m, n, -1.5, a.data(), m, x.data(), 2.0, want.data());
  for (index_t i = 0; i < m; ++i)
    ASSERT_NEAR(y[i], want[i], 1e-11 * static_cast<double>(n));
}

TEST_F(AugemWrapperSemantics, ScalZeroClearsNaN) {
  std::vector<double> x = {kNaN, 1.0, kNaN, -2.0};
  lib_->scal(static_cast<index_t>(x.size()), 0.0, x.data());
  for (double v : x) ASSERT_EQ(v, 0.0);
}

TEST_F(AugemWrapperSemantics, AxpyAlphaZeroLeavesYUntouched) {
  const index_t n = 23;
  std::vector<double> x(static_cast<std::size_t>(n), kNaN),
      y(static_cast<std::size_t>(n));
  rng_.fill(y);
  const std::vector<double> y0 = y;
  lib_->axpy(n, 0.0, x.data(), y.data());
  EXPECT_EQ(y, y0);
}

TEST_F(AugemWrapperSemantics, GemmBetaZeroOverwritesNaN) {
  const index_t m = 29, n = 13, k = 7;
  std::vector<double> a(static_cast<std::size_t>(m * k)),
      b(static_cast<std::size_t>(k * n));
  rng_.fill(a);
  rng_.fill(b);
  std::vector<double> c(static_cast<std::size_t>(m * n), kNaN);
  std::vector<double> want(static_cast<std::size_t>(m * n), 0.0);
  lib_->gemm(blas::Trans::kNo, blas::Trans::kNo, m, n, k, 1.0, a.data(), m,
             b.data(), k, 0.0, c.data(), m);
  blas::ref::gemm(blas::Trans::kNo, blas::Trans::kNo, m, n, k, 1.0, a.data(),
                  m, b.data(), k, 0.0, want.data(), m);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_TRUE(std::isfinite(c[i])) << "C[" << i << "]";
    ASSERT_NEAR(c[i], want[i], 1e-11 * static_cast<double>(k));
  }
}

}  // namespace
}  // namespace augem
