// End-to-end tests of the svSCAL extension template (the paper's stated
// future work: adding templates + specialized optimizers for new routines).
// Exercises the entire pipeline: frontend spec → transforms → identifier →
// planner → optimizer → assembly → VM and native execution → BLAS layer.

#include <gtest/gtest.h>

#include "augem/augem.hpp"
#include "augem/augem_blas.hpp"
#include "blas/libraries.hpp"
#include "blas/reference.hpp"
#include "match/identifier.hpp"
#include "support/buffer.hpp"
#include "support/rng.hpp"
#include "transform/ckernel.hpp"
#include "tuning/tuner.hpp"
#include "vm/machine.hpp"

namespace augem {
namespace {

using frontend::KernelKind;

TEST(ScalExtension, SimpleCShape) {
  const ir::Kernel k = frontend::make_scal_kernel();
  const std::string s = k.to_string();
  EXPECT_NE(s.find("void dscal_kernel(long n, double alpha, double* x)"),
            std::string::npos);
  EXPECT_NE(s.find("x[i] = (x[i] * alpha);"), std::string::npos);
}

TEST(ScalExtension, IdentifierFindsPairedSvScal) {
  transform::CGenParams p;
  p.unroll = 8;
  p.prefetch.enabled = false;
  ir::Kernel k = transform::generate_optimized_c(
      KernelKind::kScal, frontend::BLayout::kRowPanel, p);
  const match::MatchResult r = match::identify_templates(k);

  int sv_regions = 0;
  for (const match::Region& region : r.regions) {
    if (region.kind != match::TemplateKind::kSvScal) continue;
    ++sv_regions;
    if (region.unrolled()) {
      EXPECT_EQ(region.shape, match::UnrolledShape::kPaired);
      EXPECT_EQ(region.sv.size(), 8u);
      EXPECT_EQ(region.sv[0].scal, "alpha");
      EXPECT_EQ(region.name(), "svUnrolledSCAL");
    }
  }
  EXPECT_EQ(sv_regions, 2);  // main loop + remainder
}

TEST(ScalExtension, GeneratedAssemblyUsesVectorMultiply) {
  GenerateOptions o = default_options(KernelKind::kScal, Isa::kAvx);
  const auto g = generate_kernel(KernelKind::kScal, o);
  EXPECT_NE(g.asm_text.find("vbroadcastsd"), std::string::npos);
  EXPECT_NE(g.asm_text.find("vmulpd"), std::string::npos);
  EXPECT_NE(g.asm_text.find("svUnrolledSCAL"), std::string::npos);
  EXPECT_EQ(g.asm_text.find("vaddpd"), std::string::npos);  // no adds in SCAL
}

TEST(ScalExtension, VmSemanticsAcrossIsasAndSizes) {
  for (Isa isa : {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4}) {
    SCOPED_TRACE(isa_name(isa));
    GenerateOptions o = default_options(KernelKind::kScal, isa);
    const auto g = generate_kernel(KernelKind::kScal, o);
    for (long n : {0L, 1L, 7L, 16L, 100L}) {
      Rng rng(5);
      DoubleBuffer x(static_cast<std::size_t>(n));
      rng.fill(x.span());
      std::vector<double> want(x.begin(), x.end());
      for (double& v : want) v *= -2.5;
      vm::Machine m(g.insts);
      m.call({n, -2.5, x.data()});
      for (long i = 0; i < n; ++i) ASSERT_DOUBLE_EQ(x[i], want[i]) << n << i;
    }
  }
}

TEST(ScalExtension, KernelSetExposesNativeScal) {
  KernelSet set(host_arch().best_native_isa());
  ASSERT_NE(set.scal(), nullptr);
  DoubleBuffer x(100);
  for (auto& v : x) v = 2.0;
  set.scal()(100, 3.0, x.data());
  for (auto& v : x) EXPECT_DOUBLE_EQ(v, 6.0);
  EXPECT_NE(set.asm_text(KernelKind::kScal).find("dscal_kernel"),
            std::string::npos);
}

TEST(ScalExtension, AllBlasLibrariesAgree) {
  auto augem_lib = make_augem_blas();
  std::vector<std::unique_ptr<blas::Blas>> libs;
  libs.push_back(blas::make_refblas());
  libs.push_back(blas::make_gotosim());
  libs.push_back(blas::make_atlsim());
  libs.push_back(blas::make_vendorsim());

  for (long n : {0L, 1L, 3L, 64L, 1001L}) {
    Rng rng(9);
    DoubleBuffer x(static_cast<std::size_t>(n));
    rng.fill(x.span());
    std::vector<double> ref(x.begin(), x.end());
    blas::ref::scal(n, 0.75, ref.data());

    std::vector<double> mine(x.begin(), x.end());
    augem_lib->scal(n, 0.75, mine.data());
    for (long i = 0; i < n; ++i) ASSERT_DOUBLE_EQ(mine[i], ref[i]);

    for (auto& lib : libs) {
      std::vector<double> theirs(x.begin(), x.end());
      lib->scal(n, 0.75, theirs.data());
      for (long i = 0; i < n; ++i)
        ASSERT_DOUBLE_EQ(theirs[i], ref[i]) << lib->name() << " " << n;
    }
  }
}

TEST(ScalExtension, TunerSearchesScal) {
  tuning::TuneWorkload w;
  w.vec_len = 2048;
  w.reps = 2;
  const auto r = tuning::tune_level1(KernelKind::kScal,
                                     host_arch().best_native_isa(), w);
  EXPECT_GT(r.mflops, 0.0);
  EXPECT_EQ(r.kind, KernelKind::kScal);
}

}  // namespace
}  // namespace augem
