// The AUGEM-backed BLAS — generated assembly under the Goto driver — must
// match the reference implementation on every routine the evaluation uses.

#include "augem/augem_blas.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "blas/reference.hpp"
#include "support/rng.hpp"

namespace augem {
namespace {

using blas::at;
using blas::index_t;
using blas::Side;
using blas::Trans;
using blas::Uplo;

class AugemBlasTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { lib_ = make_augem_blas().release(); }
  static void TearDownTestSuite() {
    delete lib_;
    lib_ = nullptr;
  }
  static blas::Blas* lib_;
  Rng rng_{41};
};

blas::Blas* AugemBlasTest::lib_ = nullptr;

TEST_F(AugemBlasTest, Name) { EXPECT_EQ(lib_->name(), "AUGEM"); }

TEST_F(AugemBlasTest, GemmAcrossShapes) {
  for (auto [m, n, k] :
       {std::tuple<index_t, index_t, index_t>{64, 64, 64},
        {256, 96, 256},
        {33, 17, 300},     // awkward edges, multiple k blocks
        {8, 4, 8},
        {129, 65, 257},    // off-by-one everywhere
        {1, 1, 1}}) {
    const index_t lda = m + 1, ldb = k + 1, ldc = m + 2;
    std::vector<double> a(static_cast<std::size_t>(lda * k));
    std::vector<double> b(static_cast<std::size_t>(ldb * n));
    std::vector<double> c(static_cast<std::size_t>(ldc * n));
    rng_.fill(a);
    rng_.fill(b);
    rng_.fill(c);
    std::vector<double> c_ref = c;
    lib_->gemm(Trans::kNo, Trans::kNo, m, n, k, 1.5, a.data(), lda, b.data(),
               ldb, 0.5, c.data(), ldc);
    blas::ref::gemm(Trans::kNo, Trans::kNo, m, n, k, 1.5, a.data(), lda,
                    b.data(), ldb, 0.5, c_ref.data(), ldc);
    const double tol = 1e-11 * static_cast<double>(k);
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_NEAR(c[i], c_ref[i], tol)
          << "(" << m << "x" << n << "x" << k << ") at " << i;
  }
}

TEST_F(AugemBlasTest, GemmTransposed) {
  const index_t m = 48, n = 32, k = 40;
  std::vector<double> a(static_cast<std::size_t>(k * m));
  std::vector<double> b(static_cast<std::size_t>(n * k));
  std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
  rng_.fill(a);
  rng_.fill(b);
  std::vector<double> c_ref = c;
  lib_->gemm(Trans::kYes, Trans::kYes, m, n, k, 1.0, a.data(), k, b.data(), n,
             0.0, c.data(), m);
  blas::ref::gemm(Trans::kYes, Trans::kYes, m, n, k, 1.0, a.data(), k,
                  b.data(), n, 0.0, c_ref.data(), m);
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_NEAR(c[i], c_ref[i], 1e-10) << i;
}

TEST_F(AugemBlasTest, GemvIncludingAlphaBeta) {
  for (const index_t m : {1, 9, 256, 1000}) {
    const index_t n = 37, lda = m + 1;
    std::vector<double> a(static_cast<std::size_t>(lda * n)), x(n), y(m);
    rng_.fill(a);
    rng_.fill(x);
    rng_.fill(y);
    std::vector<double> y_ref = y;
    lib_->gemv(m, n, 2.5, a.data(), lda, x.data(), -0.5, y.data());
    blas::ref::gemv(m, n, 2.5, a.data(), lda, x.data(), -0.5, y_ref.data());
    for (index_t i = 0; i < m; ++i)
      ASSERT_NEAR(y[i], y_ref[i], 1e-10) << m << ":" << i;
  }
}

TEST_F(AugemBlasTest, GemvTransposedViaDotKernel) {
  const index_t m = 300, n = 40, lda = m + 1;
  std::vector<double> a(static_cast<std::size_t>(lda * n)), x(m), y(n);
  rng_.fill(a);
  rng_.fill(x);
  rng_.fill(y);
  std::vector<double> y_ref = y;
  lib_->gemv_t(m, n, 2.0, a.data(), lda, x.data(), 0.5, y.data());
  blas::ref::gemv_t(m, n, 2.0, a.data(), lda, x.data(), 0.5, y_ref.data());
  for (index_t j = 0; j < n; ++j)
    ASSERT_NEAR(y[j], y_ref[j], 1e-10) << j;
}

TEST_F(AugemBlasTest, AxpyDot) {
  for (const index_t n : {0, 1, 5, 16, 1000, 10007}) {
    std::vector<double> x(static_cast<std::size_t>(n)),
        y(static_cast<std::size_t>(n));
    rng_.fill(x);
    rng_.fill(y);
    std::vector<double> y_ref = y;
    lib_->axpy(n, 0.75, x.data(), y.data());
    blas::ref::axpy(n, 0.75, x.data(), y_ref.data());
    for (index_t i = 0; i < n; ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-13);
    EXPECT_NEAR(lib_->dot(n, x.data(), y.data()),
                blas::ref::dot(n, x.data(), y.data()),
                1e-12 * static_cast<double>(n ? n : 1));
  }
}

TEST_F(AugemBlasTest, Table6RoutinesMatchReference) {
  const index_t n = 160, k = 48, m = 160, cols = 24;
  // SYRK.
  {
    std::vector<double> a(static_cast<std::size_t>(n * k)),
        c(static_cast<std::size_t>(n * n));
    rng_.fill(a);
    rng_.fill(c);
    std::vector<double> c_ref = c;
    lib_->syrk(Uplo::kLower, Trans::kNo, n, k, 1.0, a.data(), n, 1.0,
               c.data(), n);
    blas::ref::syrk(Uplo::kLower, Trans::kNo, n, k, 1.0, a.data(), n,
                    1.0, c_ref.data(), n);
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_NEAR(c[i], c_ref[i], 1e-10) << "syrk " << i;
  }
  // SYMM.
  {
    std::vector<double> a(static_cast<std::size_t>(m * m)),
        b(static_cast<std::size_t>(m * cols)),
        c(static_cast<std::size_t>(m * cols));
    rng_.fill(a);
    rng_.fill(b);
    rng_.fill(c);
    std::vector<double> c_ref = c;
    lib_->symm(Side::kLeft, Uplo::kLower, m, cols, 1.0, a.data(), m,
               b.data(), m, 0.0, c.data(), m);
    blas::ref::symm(Side::kLeft, Uplo::kLower, m, cols, 1.0, a.data(), m,
                    b.data(), m, 0.0, c_ref.data(), m);
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_NEAR(c[i], c_ref[i], 1e-10) << "symm " << i;
  }
  // TRSM round-trips TRMM.
  {
    std::vector<double> l(static_cast<std::size_t>(m * m)),
        b(static_cast<std::size_t>(m * cols));
    rng_.fill(l);
    for (index_t i = 0; i < m; ++i) at(l.data(), m, i, i) = 4.0 + i % 3;
    rng_.fill(b);
    std::vector<double> orig = b;
    lib_->trmm(Side::kLeft, Uplo::kLower, Trans::kNo, m, cols, 1.0,
               l.data(), m, b.data(), m);
    lib_->trsm(Side::kLeft, Uplo::kLower, Trans::kNo, m, cols, 1.0,
               l.data(), m, b.data(), m);
    for (std::size_t i = 0; i < b.size(); ++i)
      ASSERT_NEAR(b[i], orig[i], 1e-8) << "trmm/trsm " << i;
  }
  // GER.
  {
    std::vector<double> x(static_cast<std::size_t>(m)),
        y(static_cast<std::size_t>(cols)),
        a(static_cast<std::size_t>(m * cols));
    rng_.fill(x);
    rng_.fill(y);
    rng_.fill(a);
    std::vector<double> a_ref = a;
    lib_->ger(m, cols, -2.0, x.data(), y.data(), a.data(), m);
    blas::ref::ger(m, cols, -2.0, x.data(), y.data(), a_ref.data(), m);
    for (std::size_t i = 0; i < a.size(); ++i)
      ASSERT_NEAR(a[i], a_ref[i], 1e-11) << "ger " << i;
  }
}

}  // namespace
}  // namespace augem
