#include "augem/augem.hpp"

#include <gtest/gtest.h>

#include "support/buffer.hpp"
#include "support/rng.hpp"
#include "support/error.hpp"

namespace augem {
namespace {

using frontend::KernelKind;

TEST(Augem, DefaultOptionsScaleWithIsaWidth) {
  const auto sse = default_options(KernelKind::kGemm, Isa::kSse2);
  EXPECT_EQ(sse.params.mr, 4);
  EXPECT_EQ(sse.params.nr, 2);
  const auto fma = default_options(KernelKind::kGemm, Isa::kFma3);
  EXPECT_EQ(fma.params.mr, 8);
  EXPECT_EQ(fma.params.nr, 4);
  const auto l1 = default_options(KernelKind::kDot, Isa::kFma3);
  EXPECT_EQ(l1.params.unroll, 16);
}

TEST(Augem, GenerateKernelProducesAssemblyForAnyIsa) {
  // FMA4 is generable even though this host cannot run it natively.
  GenerateOptions o = default_options(KernelKind::kGemm, Isa::kFma4);
  const auto g = generate_kernel(KernelKind::kGemm, o);
  EXPECT_NE(g.asm_text.find("vfmaddpd"), std::string::npos);
  EXPECT_NE(g.asm_text.find("dgemm_kernel:"), std::string::npos);
}

TEST(Augem, KernelSetBuildsAndRuns) {
  KernelSet set(host_arch().best_native_isa());
  EXPECT_NE(set.gemm(), nullptr);
  EXPECT_NE(set.gemv(), nullptr);
  EXPECT_NE(set.axpy(), nullptr);
  EXPECT_NE(set.dot(), nullptr);
  EXPECT_GT(set.gemm_mr(), 0);

  // Smoke: dot of ones.
  DoubleBuffer x(64), y(64);
  for (auto& v : x) v = 1.0;
  for (auto& v : y) v = 2.0;
  EXPECT_DOUBLE_EQ(set.dot()(64, x.data(), y.data()), 128.0);

  // axpy.
  set.axpy()(64, 3.0, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[63], 5.0);
}

TEST(Augem, KernelSetExposesAsmText) {
  KernelSet set(host_arch().best_native_isa());
  for (KernelKind kind : {KernelKind::kGemm, KernelKind::kGemv,
                          KernelKind::kAxpy, KernelKind::kDot}) {
    EXPECT_NE(set.asm_text(kind).find(".globl"), std::string::npos);
  }
  EXPECT_NE(set.asm_text(KernelKind::kGemm).find("dgemm_kernel"),
            std::string::npos);
  EXPECT_NE(set.asm_text(KernelKind::kDot).find("ddot_kernel"),
            std::string::npos);
}

TEST(Augem, KernelSetRejectsNonNativeIsa) {
  if (host_arch().has_fma4) GTEST_SKIP() << "host actually supports FMA4";
  EXPECT_THROW(KernelSet set(Isa::kFma4), Error);
}

TEST(Augem, CustomTileKernelSet) {
  transform::CGenParams gemm_p;
  gemm_p.mr = 4;
  gemm_p.nr = 4;
  transform::CGenParams l1_p;
  l1_p.unroll = 8;
  KernelSet set(host_arch().best_native_isa(), gemm_p,
                opt::VecStrategy::kVdup, l1_p);
  EXPECT_EQ(set.gemm_mr(), 4);
  EXPECT_EQ(set.gemm_nr(), 4);

  // Run the GEMM kernel on a packed 8×8×16 block.
  const long mc = 8, nc = 8, kc = 16;
  Rng rng(2);
  DoubleBuffer pa(static_cast<std::size_t>(mc * kc));
  DoubleBuffer pb(static_cast<std::size_t>(nc * kc));
  DoubleBuffer c(static_cast<std::size_t>(mc * nc));
  rng.fill(pa.span());
  rng.fill(pb.span());
  set.gemm()(mc, nc, kc, pa.data(), pb.data(), c.data(), mc);
  // Check one element against a direct sum.
  double want = 0;
  for (long l = 0; l < kc; ++l) want += pa[l * mc + 3] * pb[l * nc + 5];
  EXPECT_NEAR(c[5 * mc + 3], want, 1e-12);
}

}  // namespace
}  // namespace augem
