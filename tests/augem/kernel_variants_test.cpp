// End-to-end AUGEM BLAS variants: kernel sets generated for *each* natively
// executable ISA (not just the best one), non-default register tiles, and
// custom cache-block sizes must all produce correct results — the
// configuration space a user of the library can actually reach.

#include <gtest/gtest.h>

#include <vector>

#include "augem/augem_blas.hpp"
#include "blas/reference.hpp"
#include "support/rng.hpp"

namespace augem {
namespace {

using blas::index_t;
using blas::Trans;

void check_gemm(blas::Blas& lib, index_t m, index_t n, index_t k,
                unsigned seed) {
  Rng rng(seed);
  const index_t lda = m + 1, ldb = k + 1, ldc = m + 2;
  std::vector<double> a(static_cast<std::size_t>(lda * k));
  std::vector<double> b(static_cast<std::size_t>(ldb * n));
  std::vector<double> c(static_cast<std::size_t>(ldc * n));
  rng.fill(a);
  rng.fill(b);
  rng.fill(c);
  std::vector<double> c_ref = c;
  lib.gemm(Trans::kNo, Trans::kNo, m, n, k, 1.25, a.data(), lda, b.data(),
           ldb, -0.5, c.data(), ldc);
  blas::ref::gemm(Trans::kNo, Trans::kNo, m, n, k, 1.25, a.data(), lda,
                  b.data(), ldb, -0.5, c_ref.data(), ldc);
  const double tol = 1e-11 * static_cast<double>(k);
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_NEAR(c[i], c_ref[i], tol) << lib.name() << " " << i;
}

TEST(KernelVariants, EveryNativeIsaProducesCorrectBlas) {
  for (Isa isa : host_arch().native_isas()) {
    if (isa == Isa::kFma4 && !host_arch().has_fma4) continue;
    SCOPED_TRACE(isa_name(isa));
    auto kernels = std::make_shared<KernelSet>(isa);
    auto lib = make_augem_blas(kernels, blas::default_block_sizes(host_arch()));
    check_gemm(*lib, 96, 64, 80, 7);
    check_gemm(*lib, 13, 9, 17, 8);  // edges everywhere

    // Level-1 through the same set.
    Rng rng(9);
    std::vector<double> x(777), y(777);
    rng.fill(x);
    rng.fill(y);
    std::vector<double> y_ref = y;
    lib->axpy(777, 1.5, x.data(), y.data());
    blas::ref::axpy(777, 1.5, x.data(), y_ref.data());
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_NEAR(y[i], y_ref[i], 1e-13);
  }
}

TEST(KernelVariants, NonDefaultTileAndShufStrategy) {
  const Isa isa = host_arch().best_native_isa();
  const int w = isa_vector_doubles(isa);
  transform::CGenParams gemm_p;
  gemm_p.mr = w;
  gemm_p.nr = w;  // the n×n tile the Shuf strategy requires
  transform::CGenParams l1_p;
  l1_p.unroll = 4;
  auto kernels = std::make_shared<KernelSet>(isa, gemm_p,
                                             opt::VecStrategy::kShuf, l1_p);
  auto lib = make_augem_blas(kernels, blas::default_block_sizes(host_arch()));
  check_gemm(*lib, 64, 48, 96, 11);
  check_gemm(*lib, w, w, 1, 12);
}

TEST(KernelVariants, TinyBlockSizesStressTheDriver) {
  auto kernels = std::make_shared<KernelSet>(host_arch().best_native_isa());
  blas::BlockSizes tiny;
  tiny.mc = static_cast<index_t>(kernels->gemm_mr());
  tiny.nc = static_cast<index_t>(kernels->gemm_nr());
  tiny.kc = 3;
  auto lib = make_augem_blas(kernels, tiny);
  check_gemm(*lib, 50, 30, 20, 13);  // many blocks in every dimension
}

TEST(KernelVariants, SharedKernelSetAcrossTwoBlasInstances) {
  auto kernels = std::make_shared<KernelSet>(host_arch().best_native_isa());
  auto lib1 = make_augem_blas(kernels, blas::default_block_sizes(host_arch()));
  auto lib2 = make_augem_blas(kernels, {32, 16, 8});
  check_gemm(*lib1, 40, 40, 40, 14);
  check_gemm(*lib2, 40, 40, 40, 14);
}

TEST(KernelVariants, ScalarStrategyBlasIsCorrectIfSlow) {
  const Isa isa = host_arch().best_native_isa();
  transform::CGenParams gemm_p;
  gemm_p.mr = 2;
  gemm_p.nr = 2;
  transform::CGenParams l1_p;
  l1_p.unroll = 2;
  auto kernels = std::make_shared<KernelSet>(isa, gemm_p,
                                             opt::VecStrategy::kScalar, l1_p);
  auto lib = make_augem_blas(kernels, blas::default_block_sizes(host_arch()));
  check_gemm(*lib, 30, 22, 18, 15);
}

}  // namespace
}  // namespace augem
