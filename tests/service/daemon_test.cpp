#include "service/daemon.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "jit/jit.hpp"
#include "runtime/key.hpp"
#include "service/client.hpp"
#include "support/arch.hpp"

namespace augem::service {
namespace {

using frontend::KernelKind;
using runtime::KernelKey;
using runtime::ShapeClass;
using runtime::TunedVariant;

/// The CI daemon configuration: tiny tuning workload, minimal measurement
/// budget, no background retune thread (promotion is driven explicitly).
DaemonConfig quick_config(const std::string& dir) {
  DaemonConfig c;
  c.cache_dir = dir;
  tuning::TuneWorkload w;
  w.mc = 32;
  w.nc = 32;
  w.kc = 64;
  w.vec_len = 2048;
  w.reps = 1;
  c.workload_override = w;
  c.runner.min_reps = 1;
  c.runner.max_reps = 3;
  c.runner.max_seconds = 0.25;
  c.runner.warmup_max_reps = 1;
  c.runner.check_frequency = false;
  c.retune = false;
  return c;
}

ClientOptions client_options(const std::string& dir) {
  ClientOptions o;
  o.cache_dir = dir;
  return o;
}

/// The artifact path the daemon's naming scheme implies for `key`.
std::string expected_artifact(const std::string& dir, const KernelKey& key) {
  char name[32];
  std::snprintf(name, sizeof(name), "k%016llx.so",
                static_cast<unsigned long long>(fnv1a64(key.to_string())));
  return artifact_dir(dir) + "/" + name;
}

/// Private cache directory per test; the env knobs that change the
/// engagement policy are cleared so one test cannot poison the next.
class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/augem_daemon_test_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    ::unsetenv("AUGEM_NO_DAEMON");
    ::unsetenv("AUGEM_DAEMON");
    ::unsetenv("AUGEM_CACHE_DIR");
    ::unsetenv("AUGEM_DISABLE_TUNE_CACHE");
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string dir_;
};

TEST_F(DaemonTest, ResolveTunesOncePublishesArtifactAndThenHitsTheDb) {
  Daemon daemon(quick_config(dir_));
  ASSERT_TRUE(daemon.start()) << daemon.last_error();
  auto client = ServiceClient::try_connect(client_options(dir_));
  ASSERT_NE(client, nullptr);

  const KernelKey key =
      runtime::host_kernel_key(KernelKind::kAxpy, ShapeClass::kLarge);
  const auto entry = client->resolve(key);
  ASSERT_TRUE(entry.has_value());
  EXPECT_GT(entry->variant.mflops, 0.0);
  ASSERT_FALSE(entry->symbol.empty());
  // The published artifact follows the documented naming scheme and is a
  // loadable shared object whose symbol computes a correct AXPY.
  EXPECT_EQ(entry->so_path, expected_artifact(dir_, key));
  ASSERT_TRUE(std::filesystem::exists(entry->so_path));
  jit::CompiledModule mod = jit::load_shared_object(entry->so_path);
  auto* fn =
      mod.fn<void(long, double, const double*, double*)>(entry->symbol);
  std::vector<double> x(256, 1.0), y(256, 2.0);
  fn(256, 3.0, x.data(), y.data());
  for (const double v : y) ASSERT_EQ(v, 5.0);

  DaemonCounters c = daemon.counters();
  EXPECT_EQ(c.resolves, 1u);
  EXPECT_EQ(c.resolve_hits, 0u);  // cold: the tuner ran

  // A second resolve is served from the database — no second tuner run —
  // and hands back the same artifact.
  const auto again = client->resolve(key);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->so_path, entry->so_path);
  c = daemon.counters();
  EXPECT_EQ(c.resolves, 2u);
  EXPECT_EQ(c.resolve_hits, 1u);

  // The key lands on the retuning sweep's work list.
  const auto served = daemon.served_keys();
  ASSERT_EQ(served.size(), 1u);
  EXPECT_EQ(served[0], key.to_string());
  daemon.stop();
}

TEST_F(DaemonTest, OneDaemonPerDirectoryAndTheLockOutlivesStop) {
  Daemon first(quick_config(dir_));
  ASSERT_TRUE(first.start()) << first.last_error();
  Daemon second(quick_config(dir_));
  EXPECT_FALSE(second.start());
  EXPECT_NE(second.last_error().find("another daemon"), std::string::npos)
      << second.last_error();
  first.stop();
  // stop() releases the flock, so a successor can take over the dir.
  Daemon third(quick_config(dir_));
  EXPECT_TRUE(third.start()) << third.last_error();
  third.stop();
}

TEST_F(DaemonTest, ProtocolVersionMismatchFallsBackWithoutKillingService) {
  Daemon daemon(quick_config(dir_));
  ASSERT_TRUE(daemon.start()) << daemon.last_error();
  ClientOptions wrong = client_options(dir_);
  wrong.protocol_version = 999;
  EXPECT_EQ(ServiceClient::try_connect(wrong), nullptr);
  EXPECT_GE(daemon.counters().protocol_errors, 1u);
  // The daemon keeps serving correct-version clients afterwards.
  auto ok = ServiceClient::try_connect(client_options(dir_));
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->stats().has_value());
  daemon.stop();
}

TEST_F(DaemonTest, GarbageBytesPoisonOnlyTheirOwnConnection) {
  Daemon daemon(quick_config(dir_));
  ASSERT_TRUE(daemon.start()) << daemon.last_error();

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, daemon.socket_path().c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const char junk[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(fd, junk, sizeof(junk), MSG_NOSIGNAL), 0);
  // The daemon counts the framing violation and closes; drain to EOF so
  // the count is observable before asserting.
  char buf[64];
  while (::recv(fd, buf, sizeof(buf), 0) > 0) {
  }
  ::close(fd);
  EXPECT_GE(daemon.counters().protocol_errors, 1u);

  // An honest client on a fresh connection is unaffected.
  auto client = ServiceClient::try_connect(client_options(dir_));
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->stats().has_value());
  daemon.stop();
}

TEST_F(DaemonTest, NoDaemonEnvRefusesEvenALiveSocket) {
  Daemon daemon(quick_config(dir_));
  ASSERT_TRUE(daemon.start()) << daemon.last_error();
  ::setenv("AUGEM_NO_DAEMON", "1", 1);
  EXPECT_EQ(ServiceClient::try_connect(client_options(dir_)), nullptr);
  ::unsetenv("AUGEM_NO_DAEMON");
  EXPECT_NE(ServiceClient::try_connect(client_options(dir_)), nullptr);
  daemon.stop();
}

TEST_F(DaemonTest, PublishKeepsTheBetterEntry) {
  Daemon daemon(quick_config(dir_));
  ASSERT_TRUE(daemon.start()) << daemon.last_error();
  auto client = ServiceClient::try_connect(client_options(dir_));
  ASSERT_NE(client, nullptr);

  const KernelKey key =
      runtime::host_kernel_key(KernelKind::kAxpy, ShapeClass::kLarge);
  TunedVariant v;
  v.params.unroll = 8;
  v.mflops = 100.0;
  EXPECT_TRUE(client->publish(key, v));
  v.params.unroll = 4;
  v.mflops = 50.0;  // worse: must not displace the 100-MFLOPS entry
  EXPECT_TRUE(client->publish(key, v));
  v.params.unroll = 16;
  v.mflops = 150.0;  // better: replaces it
  EXPECT_TRUE(client->publish(key, v));
  EXPECT_EQ(daemon.counters().publishes, 3u);

  TunedVariant got;
  ASSERT_TRUE(daemon.runtime().database()->lookup(key, got));
  EXPECT_EQ(got.mflops, 150.0);
  EXPECT_EQ(got.params.unroll, 16);
  daemon.stop();
}

// The promotion gate, end to end: a strictly better candidate replaces the
// served entry (artifact republished), an identical one is a no-op, a
// strictly worse one is rejected by the noise-aware diff and the incumbent
// survives. This is the zero-downtime retuning contract of docs/serving.md.
TEST_F(DaemonTest, PromotionReplacesServedEntryOnlyWhenDiffSaysImproved) {
  Daemon daemon(quick_config(dir_));
  ASSERT_TRUE(daemon.start()) << daemon.last_error();
  const KernelKey key =
      runtime::host_kernel_key(KernelKind::kGemm, ShapeClass::kLarge);
  auto* db = daemon.runtime().database();
  ASSERT_NE(db, nullptr);

  // Incumbent: the deliberately pessimized scalar configuration (the same
  // one bench_gate --selftest uses — several times slower than any SIMD
  // strategy, so the verdict is deterministic even on a noisy machine).
  TunedVariant slow;
  slow.params.mr = 4;
  slow.params.nr = 2;
  slow.params.ku = 1;
  slow.params.prefetch.enabled = false;
  slow.strategy = opt::VecStrategy::kScalar;
  slow.mflops = 1.0;
  db->store(key, slow);

  // Candidate: a vectorized tile from the tuner's own search space.
  const int word = isa_vector_doubles(key.isa);
  TunedVariant fast;
  fast.params.mr = word;
  fast.params.nr = word;
  fast.params.ku = 2;
  fast.params.prefetch.enabled = false;
  fast.strategy = opt::VecStrategy::kVdup;

  ASSERT_EQ(daemon.try_promote(key, fast), PromotionOutcome::kPromoted);
  EXPECT_EQ(daemon.counters().promotions, 1u);
  TunedVariant now;
  ASSERT_TRUE(db->lookup(key, now));
  EXPECT_EQ(now.params.mr, fast.params.mr);
  EXPECT_EQ(now.params.nr, fast.params.nr);
  EXPECT_EQ(now.strategy, opt::VecStrategy::kVdup);
  EXPECT_GT(now.mflops, 0.0);  // rewritten with the measured score
  // The artifact was republished from the winner.
  EXPECT_TRUE(std::filesystem::exists(expected_artifact(dir_, key)));

  // Re-offering the served configuration gates nothing.
  EXPECT_EQ(daemon.try_promote(key, fast), PromotionOutcome::kUnchanged);

  // A worse candidate is measured, loses the diff, and changes nothing.
  EXPECT_EQ(daemon.try_promote(key, slow), PromotionOutcome::kRejected);
  EXPECT_EQ(daemon.counters().rejected_promotions, 1u);
  TunedVariant still;
  ASSERT_TRUE(db->lookup(key, still));
  EXPECT_EQ(still.params.mr, fast.params.mr);
  EXPECT_EQ(still.strategy, opt::VecStrategy::kVdup);

  // No incumbent in the database: nothing to promote against.
  const KernelKey other =
      runtime::host_kernel_key(KernelKind::kDot, ShapeClass::kLarge);
  EXPECT_EQ(daemon.try_promote(other, fast), PromotionOutcome::kError);
  EXPECT_EQ(daemon.retune_key(other), PromotionOutcome::kError);
  EXPECT_EQ(daemon.counters().retunes, 1u);
  daemon.stop();
}

}  // namespace
}  // namespace augem::service
