#include "service/protocol.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <optional>
#include <random>
#include <string>

namespace augem::service {
namespace {

/// Hand-assembles a frame so tests can claim a length that disagrees with
/// the payload actually present (torn writes, hostile peers).
std::string raw_frame(std::string_view payload,
                      std::optional<std::uint32_t> claimed = std::nullopt) {
  std::string f(kFrameMagic, sizeof(kFrameMagic));
  const std::uint32_t len =
      claimed.value_or(static_cast<std::uint32_t>(payload.size()));
  for (int i = 0; i < 4; ++i)
    f.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  f.append(payload);
  return f;
}

FrameStatus decode(std::string_view buf, std::size_t& consumed) {
  Json ignored;
  return decode_frame(buf, consumed, ignored);
}

TEST(Protocol, EncodeDecodeRoundTrip) {
  Json msg = make_request("resolve");
  msg["key"] = Json(std::string("gemm/large/testcpu"));
  msg["n"] = Json(42.0);
  const std::string frame = encode_frame(msg);
  std::size_t consumed = 0;
  Json out;
  ASSERT_EQ(decode_frame(frame, consumed, out), FrameStatus::kOk);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(out.dump(), msg.dump());
}

TEST(Protocol, BackToBackFramesDecodeSequentially) {
  // A buffer can hold several frames; consumed tells the reader where the
  // next one starts.
  Json b = make_request("stats");
  b["x"] = Json(3.0);
  std::string buf = encode_frame(make_request("hello")) + encode_frame(b);
  std::size_t consumed = 0;
  Json out;
  ASSERT_EQ(decode_frame(buf, consumed, out), FrameStatus::kOk);
  EXPECT_EQ(out.string("op").value_or(""), "hello");
  buf.erase(0, consumed);
  ASSERT_EQ(decode_frame(buf, consumed, out), FrameStatus::kOk);
  EXPECT_EQ(out.string("op").value_or(""), "stats");
  buf.erase(0, consumed);
  EXPECT_EQ(decode(buf, consumed), FrameStatus::kNeedMore);  // empty tail
}

TEST(Protocol, TruncationAtEveryByteBoundaryAsksForMore) {
  // Every strict prefix of a valid frame is "keep reading", never an error
  // and never a partial decode.
  const std::string frame = encode_frame(make_request("stats"));
  for (std::size_t n = 0; n < frame.size(); ++n) {
    std::size_t consumed = 7;  // must be reset to 0 by the decoder
    EXPECT_EQ(decode(std::string_view(frame).substr(0, n), consumed),
              FrameStatus::kNeedMore)
        << "prefix length " << n;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(Protocol, BadMagicDetectedFromTheFirstDivergentByte) {
  std::size_t consumed = 0;
  // Garbage shorter than the magic still fails fast (a peer speaking HTTP
  // must not be told "need more").
  EXPECT_EQ(decode("X", consumed), FrameStatus::kBadMagic);
  EXPECT_EQ(decode("AX", consumed), FrameStatus::kBadMagic);
  EXPECT_EQ(decode("AUGX", consumed), FrameStatus::kBadMagic);
  EXPECT_EQ(decode("GET / HTTP/1.1\r\n", consumed), FrameStatus::kBadMagic);
  // …while a valid magic prefix is genuinely "need more".
  EXPECT_EQ(decode("A", consumed), FrameStatus::kNeedMore);
  EXPECT_EQ(decode("AUG", consumed), FrameStatus::kNeedMore);
  // A corrupted first byte of an otherwise valid frame.
  std::string frame = encode_frame(make_request("hello"));
  frame[0] = 'B';
  EXPECT_EQ(decode(frame, consumed), FrameStatus::kBadMagic);
  EXPECT_EQ(consumed, 0u);
}

TEST(Protocol, OversizedLengthRejectedBeforeAllocation) {
  std::size_t consumed = 0;
  EXPECT_EQ(decode(raw_frame("", kMaxFramePayload + 1), consumed),
            FrameStatus::kOversized);
  EXPECT_EQ(consumed, 0u);
  // The bound itself is allowed: with only the header present that is a
  // truncated-but-valid frame.
  EXPECT_EQ(decode(raw_frame("", kMaxFramePayload), consumed),
            FrameStatus::kNeedMore);
}

TEST(Protocol, NonObjectPayloadsRejected) {
  std::size_t consumed = 0;
  EXPECT_EQ(decode(raw_frame("not json"), consumed), FrameStatus::kBadPayload);
  EXPECT_EQ(decode(raw_frame("[1,2,3]"), consumed), FrameStatus::kBadPayload);
  EXPECT_EQ(decode(raw_frame("42"), consumed), FrameStatus::kBadPayload);
  EXPECT_EQ(decode(raw_frame("\"str\""), consumed), FrameStatus::kBadPayload);
  EXPECT_EQ(decode(raw_frame(""), consumed), FrameStatus::kBadPayload);
  EXPECT_EQ(consumed, 0u);
  Json out;
  ASSERT_EQ(decode_frame(raw_frame("{}"), consumed, out), FrameStatus::kOk);
  EXPECT_TRUE(out.is_object());
}

TEST(ProtocolFuzz, BitFlippedFramesNeverCrashOrOverconsume) {
  // Flip every bit of a valid frame once. Any status is acceptable; what
  // must hold is no crash, no consumed bytes on failure, and no claim of
  // bytes beyond the buffer on success (a flipped length byte must not
  // read out of bounds).
  Json msg = make_request("resolve");
  msg["key"] = Json(std::string(40, 'k'));
  const std::string frame = encode_frame(msg);
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string f = frame;
      f[byte] = static_cast<char>(f[byte] ^ (1 << bit));
      std::size_t consumed = 1234;
      Json out;
      const FrameStatus s = decode_frame(f, consumed, out);
      if (s == FrameStatus::kOk) {
        EXPECT_LE(consumed, f.size());
      } else {
        EXPECT_EQ(consumed, 0u) << frame_status_name(s);
      }
    }
  }
}

TEST(ProtocolFuzz, SeededRandomBuffersNeverCrash) {
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> len_dist(0, 96);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int iter = 0; iter < 20000; ++iter) {
    std::string buf(static_cast<std::size_t>(len_dist(rng)), '\0');
    for (char& c : buf) c = static_cast<char>(byte_dist(rng));
    // Half the buffers keep a valid magic so the length and payload stages
    // get fuzzed too, not just the magic check.
    if (iter % 2 == 0 && buf.size() >= sizeof(kFrameMagic))
      std::memcpy(buf.data(), kFrameMagic, sizeof(kFrameMagic));
    std::size_t consumed = 1;
    Json out;
    const FrameStatus s = decode_frame(buf, consumed, out);
    if (s == FrameStatus::kOk) {
      EXPECT_LE(consumed, buf.size());
    } else {
      EXPECT_EQ(consumed, 0u);
    }
  }
}

TEST(Protocol, SocketTransportRoundTripEofAndGarbage) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  Json msg = make_request("hello");
  msg["pid"] = Json(123.0);
  ASSERT_TRUE(write_frame(sv[0], msg));
  Json got;
  ASSERT_EQ(read_frame(sv[1], got), ReadStatus::kOk);
  EXPECT_EQ(got.dump(), msg.dump());

  // Garbage on the wire is a connection-fatal error, not a parse attempt.
  const char junk[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(sv[0], junk, sizeof(junk), 0), 0);
  EXPECT_EQ(read_frame(sv[1], got), ReadStatus::kError);
  ::close(sv[0]);
  ::close(sv[1]);

  // A clean close at a frame boundary is kEof; mid-frame it is kError.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[0]);
  EXPECT_EQ(read_frame(sv[1], got), ReadStatus::kEof);
  ::close(sv[1]);

  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const std::string frame = encode_frame(msg);
  ASSERT_GT(::send(sv[0], frame.data(), frame.size() / 2, 0), 0);
  ::close(sv[0]);  // EOF mid-frame
  EXPECT_EQ(read_frame(sv[1], got), ReadStatus::kError);
  ::close(sv[1]);
}

TEST(Protocol, RequestAndResponseHelpers) {
  const Json req = make_request("resolve");
  EXPECT_EQ(req.number("v").value_or(0.0), kServiceProtocolVersion);
  EXPECT_EQ(req.string("op").value_or(""), "resolve");
  EXPECT_FALSE(response_ok(req));  // missing "ok" means failure

  EXPECT_TRUE(response_ok(make_ok_response()));
  const Json err = make_error_response("nope");
  EXPECT_FALSE(response_ok(err));
  EXPECT_EQ(err.string("error").value_or(""), "nope");

  EXPECT_STREQ(frame_status_name(FrameStatus::kOk), "ok");
  EXPECT_STREQ(frame_status_name(FrameStatus::kNeedMore), "need-more");
  EXPECT_STREQ(frame_status_name(FrameStatus::kBadMagic), "bad-magic");
  EXPECT_STREQ(frame_status_name(FrameStatus::kOversized), "oversized");
  EXPECT_STREQ(frame_status_name(FrameStatus::kBadPayload), "bad-payload");
}

TEST(Protocol, WellKnownPathsLiveInsideTheCacheDir) {
  EXPECT_EQ(socket_path("/x"), "/x/daemon.sock");
  EXPECT_EQ(lock_path("/x"), "/x/daemon.lock");
  EXPECT_EQ(artifact_dir("/x"), "/x/kernels");
}

TEST(Protocol, FnvMatchesPublishedVectors) {
  // The standard FNV-1a 64-bit test vectors: artifact file names derived
  // from key strings must be stable across builds and processes.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace augem::service
