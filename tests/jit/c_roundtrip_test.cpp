// Cross-validation through the C side: the printed optimized low-level C
// (Kernel::to_string) must be valid C that gcc compiles, and the compiled
// binary must agree with the IR interpreter AND the generated assembly —
// three independent executions of the same program.

#include <gtest/gtest.h>

#include "../common/genrun.hpp"
#include "ir/interp.hpp"

namespace augem::testing {
namespace {

using frontend::BLayout;
using frontend::KernelKind;
using transform::CGenParams;

TEST(CRoundTrip, OptimizedGemmCompilesAndMatches) {
  CGenParams p;
  p.mr = 4;
  p.nr = 2;
  p.ku = 2;
  ir::Kernel k = transform::generate_optimized_c(KernelKind::kGemm,
                                                 BLayout::kRowPanel, p);
  const jit::CompiledModule mod = jit::compile_c(k.to_string());
  auto* fn = mod.fn<void(long, long, long, const double*, const double*,
                         double*, long)>("dgemm_kernel");

  const long mc = 8, nc = 4, kc = 7, ldc = 9;
  Rng rng(61);
  DoubleBuffer a(static_cast<std::size_t>(mc * kc));
  DoubleBuffer b(static_cast<std::size_t>(nc * kc));
  DoubleBuffer c1(static_cast<std::size_t>(nc * ldc));
  rng.fill(a.span());
  rng.fill(b.span());
  rng.fill(c1.span());
  std::vector<double> c2(c1.begin(), c1.end());

  fn(mc, nc, kc, a.data(), b.data(), c1.data(), ldc);

  // Interpreter on the same IR.
  ir::Env env;
  env["mc"] = mc;
  env["nc"] = nc;
  env["kc"] = kc;
  env["ldc"] = ldc;
  env["A"] = static_cast<double*>(a.data());
  env["B"] = static_cast<double*>(b.data());
  env["C"] = c2.data();
  ir::interpret(k, std::move(env));

  // gcc and the interpreter evaluate the identical statement sequence:
  // results must agree bit-for-bit (no reassociation anywhere).
  for (std::size_t i = 0; i < c1.size(); ++i) ASSERT_EQ(c1[i], c2[i]) << i;
}

TEST(CRoundTrip, AllKernelsCompileAsC) {
  for (KernelKind kind : {KernelKind::kGemm, KernelKind::kGemv,
                          KernelKind::kAxpy, KernelKind::kDot,
                          KernelKind::kScal}) {
    SCOPED_TRACE(frontend::kernel_kind_name(kind));
    CGenParams p;
    p.mr = 4;
    p.nr = 2;
    p.unroll = 8;
    ir::Kernel k =
        transform::generate_optimized_c(kind, BLayout::kRowPanel, p);
    EXPECT_NO_THROW(jit::compile_c(k.to_string()));
  }
}

TEST(CRoundTrip, CompiledCAgreesWithGeneratedAssembly) {
  // gcc-from-C vs AUGEM-assembly on the same dot product (within
  // reassociation tolerance: the asm vectorizes, the C stays scalar).
  CGenParams p;
  p.unroll = 8;
  ir::Kernel k =
      transform::generate_optimized_c(KernelKind::kDot, BLayout::kRowPanel, p);
  const jit::CompiledModule cmod = jit::compile_c(k.to_string());
  auto* cfn = cmod.fn<double(long, const double*, const double*)>("ddot_kernel");

  opt::OptConfig cfg;
  cfg.isa = host_arch().best_native_isa();
  auto g = asmgen::generate_assembly(k.clone(), cfg);
  const jit::CompiledModule amod = jit::assemble(g.asm_text);
  auto* afn = amod.fn<double(long, const double*, const double*)>(g.name);

  const long n = 1003;
  Rng rng(63);
  DoubleBuffer x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(n));
  rng.fill(x.span());
  rng.fill(y.span());
  EXPECT_NEAR(cfn(n, x.data(), y.data()), afn(n, x.data(), y.data()),
              1e-12 * n);
}

TEST(CRoundTrip, InvalidCReportsCompilerDiagnostics) {
  EXPECT_THROW(jit::compile_c("this is not C at all"), Error);
}

}  // namespace
}  // namespace augem::testing
