#include "jit/jit.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "support/error.hpp"

namespace augem::jit {
namespace {

TEST(Jit, ToolchainIsAvailable) { EXPECT_TRUE(toolchain_available()); }

TEST(Jit, AssemblesAndCallsTrivialFunction) {
  // long forty_two() { return 42; }
  const std::string text =
      "\t.text\n"
      "\t.globl forty_two\n"
      "forty_two:\n"
      "\tmovq $42, %rax\n"
      "\tret\n";
  CompiledModule mod = assemble(text);
  auto* fn = mod.fn<long()>("forty_two");
  EXPECT_EQ(fn(), 42);
}

TEST(Jit, PassesArgumentsPerSysV) {
  // long add3(long a, long b, long c) { return a + b + c; }
  const std::string text =
      "\t.text\n"
      "\t.globl add3\n"
      "add3:\n"
      "\tmovq %rdi, %rax\n"
      "\taddq %rsi, %rax\n"
      "\taddq %rdx, %rax\n"
      "\tret\n";
  CompiledModule mod = assemble(text);
  EXPECT_EQ(mod.fn<long(long, long, long)>("add3")(10, 20, 12), 42);
}

TEST(Jit, DoubleReturnInXmm0) {
  // double twice(double x) { return x + x; }
  const std::string text =
      "\t.text\n"
      "\t.globl twice\n"
      "twice:\n"
      "\taddsd %xmm0, %xmm0\n"
      "\tret\n";
  CompiledModule mod = assemble(text);
  EXPECT_DOUBLE_EQ(mod.fn<double(double)>("twice")(2.5), 5.0);
}

TEST(Jit, SyntaxErrorReportsDiagnostics) {
  try {
    assemble("\t.text\n\tthis_is_not_an_instruction %rax\n");
    FAIL() << "expected assembler failure";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("assembler failed"),
              std::string::npos);
  }
}

TEST(Jit, MissingSymbolThrows) {
  CompiledModule mod = assemble(
      "\t.text\n\t.globl f\nf:\n\tret\n");
  EXPECT_NE(mod.raw_symbol("f"), nullptr);
  EXPECT_THROW(mod.raw_symbol("nope"), Error);
}

TEST(Jit, ModuleIsMovable) {
  CompiledModule a = assemble("\t.text\n\t.globl g\ng:\n\tret\n");
  CompiledModule b = std::move(a);
  EXPECT_NE(b.raw_symbol("g"), nullptr);
}

TEST(Jit, TempFilesAreCleanedUp) {
  std::string so;
  {
    CompiledModule mod = assemble("\t.text\n\t.globl h\nh:\n\tret\n");
    so = mod.so_path();
    std::ifstream exists(so);
    EXPECT_TRUE(exists.good());
  }
  std::ifstream gone(so);
  EXPECT_FALSE(gone.good());
}

}  // namespace
}  // namespace augem::jit
