// Native execution of generated kernels: the same pipeline outputs that the
// VM validated are assembled with the system toolchain and run on the host
// CPU, cross-checked against the reference oracle. Only host-supported ISAs
// run here (FMA4 coverage lives in the VM tests).

#include <gtest/gtest.h>

#include "support/arch.hpp"
#include "../common/genrun.hpp"

namespace augem::testing {
namespace {

using frontend::BLayout;
using frontend::KernelKind;
using opt::OptConfig;
using opt::VecStrategy;
using transform::CGenParams;

std::vector<Isa> runnable_isas() {
  std::vector<Isa> out;
  for (Isa isa : host_arch().native_isas())
    if (isa != Isa::kFma4) out.push_back(isa);
  return out;
}

TEST(NativeKernels, DotAllHostIsas) {
  CGenParams p;
  p.unroll = 8;
  for (Isa isa : runnable_isas()) {
    SCOPED_TRACE(isa_name(isa));
    OptConfig c;
    c.isa = isa;
    auto g = build_kernel(KernelKind::kDot, p, c);
    run_dot(g, Runner::kJit, 1003);
    run_dot(g, Runner::kJit, 4);
    run_dot(g, Runner::kJit, 0);
  }
}

TEST(NativeKernels, AxpyAllHostIsas) {
  CGenParams p;
  p.unroll = 8;
  for (Isa isa : runnable_isas()) {
    SCOPED_TRACE(isa_name(isa));
    OptConfig c;
    c.isa = isa;
    auto g = build_kernel(KernelKind::kAxpy, p, c);
    run_axpy(g, Runner::kJit, 517);
    run_axpy(g, Runner::kJit, 3);
  }
}

TEST(NativeKernels, GemvAllHostIsas) {
  CGenParams p;
  p.unroll = 8;
  for (Isa isa : runnable_isas()) {
    SCOPED_TRACE(isa_name(isa));
    OptConfig c;
    c.isa = isa;
    auto g = build_kernel(KernelKind::kGemv, p, c);
    run_gemv(g, Runner::kJit, 65, 17, 67);
  }
}

struct NativeGemmCase {
  VecStrategy strategy;
  int mr, nr, ku;
};

class NativeGemm : public ::testing::TestWithParam<NativeGemmCase> {};

TEST_P(NativeGemm, MatchesReferenceOnHostBestIsa) {
  const Isa isa = host_arch().best_native_isa();
  const NativeGemmCase c = GetParam();
  const int w = isa_vector_doubles(isa);
  if (c.strategy == VecStrategy::kShuf && (c.mr != w || c.nr != w))
    GTEST_SKIP() << "Shuf needs an n×n tile";
  CGenParams p;
  p.mr = c.mr;
  p.nr = c.nr;
  p.ku = c.ku;
  OptConfig cfg;
  cfg.isa = isa;
  cfg.strategy = c.strategy;
  auto g = build_kernel(KernelKind::kGemm, p, cfg);
  run_gemm(g, Runner::kJit, 4 * c.mr, 4 * c.nr, 37, 4 * c.mr + 5,
           BLayout::kRowPanel);
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, NativeGemm,
    ::testing::Values(NativeGemmCase{VecStrategy::kVdup, 4, 4, 1},
                      NativeGemmCase{VecStrategy::kVdup, 8, 4, 1},
                      NativeGemmCase{VecStrategy::kVdup, 8, 2, 2},
                      NativeGemmCase{VecStrategy::kShuf, 4, 4, 1},
                      NativeGemmCase{VecStrategy::kVdup, 2, 2, 1},
                      NativeGemmCase{VecStrategy::kScalar, 2, 2, 1}));

TEST(NativeKernels, VmAndJitBitwiseAgree) {
  // The VM and the silicon must produce identical doubles for identical
  // instruction streams (same evaluation order — no tolerance needed).
  CGenParams p;
  p.mr = 4;
  p.nr = 2;
  OptConfig c;
  c.isa = host_arch().best_native_isa();
  auto g = build_kernel(KernelKind::kGemm, p, c);

  const std::int64_t mc = 8, nc = 4, kc = 11, ldc = 9;
  Rng rng(3);
  DoubleBuffer a(static_cast<std::size_t>(mc * kc));
  DoubleBuffer b(static_cast<std::size_t>(nc * kc));
  DoubleBuffer c1(static_cast<std::size_t>(nc * ldc));
  rng.fill(a.span());
  rng.fill(b.span());
  rng.fill(c1.span());
  std::vector<double> c2(c1.begin(), c1.end());

  vm::Machine machine(g.insts);
  machine.call({mc, nc, kc, static_cast<const double*>(a.data()),
                static_cast<const double*>(b.data()), c1.data(), ldc});

  jit::CompiledModule mod = jit::assemble(g.asm_text);
  auto* fn = mod.fn<void(long, long, long, const double*, const double*,
                         double*, long)>(g.name);
  fn(mc, nc, kc, a.data(), b.data(), c2.data(), ldc);

  for (std::size_t i = 0; i < c1.size(); ++i)
    ASSERT_EQ(c1[i], c2[i]) << "VM and native disagree at " << i;
}

}  // namespace
}  // namespace augem::testing
