// Golden-assembly snapshot tests: the full generator pipeline is run over a
// fixed (kernel kind x ISA x vectorization strategy) grid and the rendered
// artifact — configuration header, machine IR, assembly text — is compared
// byte-for-byte against a checked-in golden file. Any intentional change to
// instruction selection, register allocation, scheduling or printing shows
// up as a reviewable diff instead of a silent output drift.
//
// Regenerating after an intentional change:
//
//   AUGEM_UPDATE_SNAPSHOTS=1 ctest -R Snapshot
//
// then review `git diff tests/snapshot/golden/` like any other code change
// (docs/benchmarking.md, "Snapshot etiquette"). On mismatch the test prints
// a unified diff of golden vs current.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "augem/augem.hpp"

namespace augem {
namespace {

using frontend::KernelKind;
using opt::VecStrategy;

struct SnapshotCase {
  KernelKind kind;
  Isa isa;
  VecStrategy strategy;
  /// Snapshot file stem, e.g. "gemm_fma3_vdup".
  std::string stem;
  /// Set for batched small-GEMM cases: the shape-specialized fully
  /// unrolled kernel with this spec's extents + fused epilogue is
  /// snapshotted instead of the generic blocked kernel.
  std::optional<frontend::SmallGemmSpec> small;
};

GenerateOptions options_for(const SnapshotCase& c) {
  if (c.small) {
    GenerateOptions o = default_small_gemm_options(*c.small, c.isa);
    o.config.strategy = c.strategy;
    return o;
  }
  GenerateOptions o = default_options(c.kind, c.isa);
  o.config.strategy = c.strategy;
  if (c.kind == KernelKind::kGemm && c.strategy == VecStrategy::kShuf) {
    // Shuf rotates a loaded B vector through its lanes, so the j tile must
    // equal the vector width (the w x w shape of bench_ablation_vdup_shuf).
    const int w = isa_vector_doubles(c.isa);
    o.params.mr = w;
    o.params.nr = w;
  }
  return o;
}

/// The snapshot artifact: everything a reviewer needs to judge a diff.
std::string render(const SnapshotCase& c) {
  const GenerateOptions o = options_for(c);
  const asmgen::GeneratedKernel gen =
      c.small ? generate_small_gemm_kernel(*c.small, o)
              : generate_kernel(c.kind, o);
  std::ostringstream os;
  os << "# AUGEM golden snapshot (tests/snapshot)\n"
     << "# kind=" << frontend::kernel_kind_name(c.kind);
  if (c.small) os << " small=" << c.small->to_string();
  os << " isa=" << isa_name(c.isa)
     << " strategy=" << opt::vec_strategy_name(c.strategy)
     << " params=" << o.params.to_string() << "\n"
     << "# frame_bytes=" << gen.frame_bytes
     << " minsts=" << gen.insts.size() << "\n"
     << "\n== machine IR ==\n";
  for (const auto& inst : gen.insts) os << inst.to_string() << "\n";
  os << "\n== assembly ==\n" << gen.asm_text;
  return os.str();
}

std::string golden_path(const SnapshotCase& c) {
  return std::string(SNAPSHOT_GOLDEN_DIR) + "/" + c.stem + ".snap";
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Minimal unified diff (LCS over lines; snapshots are a few hundred lines
/// so the quadratic table is fine). Context lines are elided to keep the
/// failure message focused on the changed hunks.
std::string unified_diff(const std::string& golden, const std::string& cur) {
  const std::vector<std::string> a = split_lines(golden);
  const std::vector<std::string> b = split_lines(cur);
  const std::size_t n = a.size(), m = b.size();
  std::vector<std::vector<int>> lcs(n + 1, std::vector<int>(m + 1, 0));
  for (std::size_t i = n; i-- > 0;)
    for (std::size_t j = m; j-- > 0;)
      lcs[i][j] = a[i] == b[j] ? lcs[i + 1][j + 1] + 1
                               : std::max(lcs[i + 1][j], lcs[i][j + 1]);
  std::ostringstream os;
  os << "--- golden\n+++ current\n";
  std::size_t i = 0, j = 0;
  int shown = 0;
  constexpr int kMaxShown = 120;
  while ((i < n || j < m) && shown < kMaxShown) {
    if (i < n && j < m && a[i] == b[j]) {
      ++i, ++j;
    } else if (j < m && (i == n || lcs[i][j + 1] >= lcs[i + 1][j])) {
      os << "@" << (j + 1) << " +" << b[j] << "\n";
      ++j, ++shown;
    } else {
      os << "@" << (i + 1) << " -" << a[i] << "\n";
      ++i, ++shown;
    }
  }
  if (shown >= kMaxShown) os << "... (diff truncated)\n";
  return os.str();
}

bool update_mode() {
  const char* env = std::getenv("AUGEM_UPDATE_SNAPSHOTS");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

class Snapshot : public ::testing::TestWithParam<SnapshotCase> {};

TEST_P(Snapshot, MatchesGolden) {
  const SnapshotCase& c = GetParam();
  const std::string current = render(c);
  const std::string path = golden_path(c);

  if (update_mode()) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << current;
    ASSERT_TRUE(out.good()) << "failed writing " << path;
    GTEST_SKIP() << "snapshot updated: " << path;
  }

  const std::optional<std::string> golden = read_file(path);
  ASSERT_TRUE(golden.has_value())
      << "missing golden file " << path
      << "\nrun: AUGEM_UPDATE_SNAPSHOTS=1 ctest -R Snapshot";
  EXPECT_TRUE(*golden == current)
      << "generated output for " << c.stem
      << " diverged from the golden snapshot.\nIf the change is intentional, "
         "regenerate with AUGEM_UPDATE_SNAPSHOTS=1 and review the diff.\n"
      << unified_diff(*golden, current);
}

std::vector<SnapshotCase> snapshot_grid() {
  std::vector<SnapshotCase> cases;
  // GEMM: both vectorization strategies on every ISA the backend targets
  // (FMA4 is generated and snapshotted even though this host cannot run it
  // natively — the printer and mapping rules are host-independent).
  for (Isa isa : {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4})
    for (VecStrategy s : {VecStrategy::kVdup, VecStrategy::kShuf}) {
      std::string stem = std::string("gemm_") + isa_name(isa) + "_" +
                         opt::vec_strategy_name(s);
      for (char& ch : stem) ch = static_cast<char>(std::tolower(ch));
      cases.push_back({KernelKind::kGemm, isa, s, stem});
    }
  // Level-1/2 kernels: the narrowest and widest natively testable ISAs.
  for (KernelKind kind : {KernelKind::kGemv, KernelKind::kAxpy,
                          KernelKind::kDot, KernelKind::kScal})
    for (Isa isa : {Isa::kSse2, Isa::kFma3}) {
      std::string stem = std::string(frontend::kernel_kind_name(kind)) + "_" +
                         isa_name(isa) + "_auto";
      for (char& ch : stem) ch = static_cast<char>(std::tolower(ch));
      cases.push_back({kind, isa, VecStrategy::kAuto, stem});
    }
  // Batched small-GEMM kernels: the register-tile (mr,nr) follows from the
  // extents, so the shape axis doubles as the (mr,nr,k) axis — 16x16x16
  // lands on the 8x4 tile (8x2 under scale), 8x4x8 on 8x4, 4x4x4 on the
  // 4x4 single-width tile. Crossed with every epilogue combination on the
  // widest ISA, plus one SSE2 point for the narrow-vector lowering.
  {
    const frontend::EpilogueSpec epis[] = {
        {},
        {.scale = true},
        {.bias = true},
        {.relu = true},
        {.scale = true, .bias = true, .relu = true},
    };
    const struct {
      int m, n, k;
    } shapes[] = {{16, 16, 16}, {8, 4, 8}, {4, 4, 4}};
    for (const auto& sh : shapes)
      for (const frontend::EpilogueSpec& e : epis) {
        frontend::SmallGemmSpec spec;
        spec.m = sh.m;
        spec.n = sh.n;
        spec.k = sh.k;
        spec.epilogue = e;
        std::string stem = "small_" + std::to_string(sh.m) + "x" +
                           std::to_string(sh.n) + "x" + std::to_string(sh.k) +
                           e.suffix() + "_fma3";
        cases.push_back(
            {KernelKind::kGemm, Isa::kFma3, VecStrategy::kVdup, stem, spec});
      }
    frontend::SmallGemmSpec sse;
    sse.m = sse.n = sse.k = 8;
    sse.epilogue = {.bias = true, .relu = true};
    cases.push_back({KernelKind::kGemm, Isa::kSse2, VecStrategy::kVdup,
                     "small_8x8x8_bias_relu_sse2", sse});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, Snapshot, ::testing::ValuesIn(snapshot_grid()),
                         [](const ::testing::TestParamInfo<SnapshotCase>& i) {
                           return i.param.stem;
                         });

}  // namespace
}  // namespace augem
