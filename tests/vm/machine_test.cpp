#include "vm/machine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "support/error.hpp"

namespace augem::vm {
namespace {

using namespace augem::opt;

TEST(Machine, ReturnsXmm0Lane0) {
  double v[1] = {3.5};
  MInstList l;
  l.push_back(vload(Vr::v0, mem_bd(Gpr::rdi, 0), 1, false));
  l.push_back(ret());
  Machine m(l);
  EXPECT_DOUBLE_EQ(m.call({static_cast<double*>(v)}), 3.5);
}

TEST(Machine, IntegerArithmetic) {
  // rax = (rdi + 5) * rsi - 3, stored through rdx.
  double out[1] = {0};
  MInstList l;
  l.push_back(imov(Gpr::rax, Gpr::rdi));
  l.push_back(iadd_imm(Gpr::rax, 5));
  l.push_back(imul(Gpr::rax, Gpr::rsi));
  l.push_back(isub_imm(Gpr::rax, 3));
  l.push_back(istore(Gpr::rax, mem_bd(Gpr::rdx, 0)));
  l.push_back(ret());
  Machine m(l);
  m.call({std::int64_t{7}, std::int64_t{4}, reinterpret_cast<double*>(out)});
  std::int64_t bits;
  std::memcpy(&bits, out, 8);
  EXPECT_EQ(bits, (7 + 5) * 4 - 3);
}

TEST(Machine, MemoryFormsOfIntegerOps) {
  std::int64_t slotmem[2] = {10, 3};
  double dummy[1] = {0};
  MInstList l;
  l.push_back(imov_imm(Gpr::rax, 100));
  l.push_back(iadd_mem(Gpr::rax, mem_bd(Gpr::rdi, 0)));   // +10
  l.push_back(imul_mem(Gpr::rax, mem_bd(Gpr::rdi, 8)));   // *3
  l.push_back(isub_mem(Gpr::rax, mem_bd(Gpr::rdi, 0)));   // -10
  l.push_back(istore(Gpr::rax, mem_bd(Gpr::rsi, 0)));
  l.push_back(ret());
  Machine m(l);
  m.call({reinterpret_cast<double*>(slotmem),
          reinterpret_cast<double*>(dummy)});
  std::int64_t bits;
  std::memcpy(&bits, dummy, 8);
  EXPECT_EQ(bits, (100 + 10) * 3 - 10);
}

TEST(Machine, LoopWithFlagsAndLabels) {
  // res = sum of x[0..n): classic counted loop.
  double x[5] = {1, 2, 3, 4, 5};
  MInstList l;
  l.push_back(vzero(Vr::v0, 1, false));
  l.push_back(imov_imm(Gpr::rax, 0));
  l.push_back(cmp(Gpr::rax, Gpr::rdi));
  l.push_back(jge("end"));
  l.push_back(label("body"));
  l.push_back(vload(Vr::v1, mem_bd(Gpr::rsi, 0), 1, false));
  l.push_back(vadd(Vr::v0, Vr::v0, Vr::v1, 1, false));
  l.push_back(iadd_imm(Gpr::rsi, 8));
  l.push_back(iadd_imm(Gpr::rax, 1));
  l.push_back(cmp(Gpr::rax, Gpr::rdi));
  l.push_back(jl("body"));
  l.push_back(label("end"));
  l.push_back(ret());
  Machine m(l);
  EXPECT_DOUBLE_EQ(m.call({std::int64_t{5}, static_cast<double*>(x)}), 15.0);
  EXPECT_DOUBLE_EQ(m.call({std::int64_t{0}, static_cast<double*>(x)}), 0.0);
}

TEST(Machine, LeaComputesAddress) {
  double data[4] = {0, 1, 2, 3};
  MInstList l;
  l.push_back(imov_imm(Gpr::rax, 2));
  l.push_back(lea(Gpr::rcx, mem_bis(Gpr::rdi, Gpr::rax, 8, 8)));
  l.push_back(vload(Vr::v0, mem_bd(Gpr::rcx, 0), 1, false));  // data[3]
  l.push_back(ret());
  Machine m(l);
  EXPECT_DOUBLE_EQ(m.call({static_cast<double*>(data)}), 3.0);
}

TEST(Machine, PushPopRoundTrip) {
  MInstList l;
  l.push_back(imov_imm(Gpr::rax, 42));
  l.push_back(push(Gpr::rax));
  l.push_back(imov_imm(Gpr::rax, 0));
  l.push_back(pop(Gpr::rbx));
  l.push_back(imov_imm(Gpr::rcx, 42));
  l.push_back(cmp(Gpr::rbx, Gpr::rcx));
  l.push_back(je("ok"));
  l.push_back(vzero(Vr::v0, 1, false));
  l.push_back(ret());
  l.push_back(label("ok"));
  l.push_back(imov_imm(Gpr::rdx, 1));
  // v0 = 1.0 via memory round-trip is overkill; just exercise jne too.
  l.push_back(cmp_imm(Gpr::rdx, 0));
  l.push_back(jne("done"));
  l.push_back(label("done"));
  l.push_back(ret());
  Machine m(l);
  EXPECT_NO_THROW(m.call({}));
}

TEST(Machine, StackArgumentsArriveAboveReturnSlot) {
  // 7 integer args: the 7th is read from 8(%rsp).
  double out[1] = {0};
  MInstList l;
  l.push_back(iload(Gpr::rax, mem_bd(Gpr::rsp, 8)));
  l.push_back(istore(Gpr::rax, mem_bd(Gpr::rdi, 0)));
  l.push_back(ret());
  Machine m(l);
  m.call({reinterpret_cast<double*>(out), std::int64_t{1}, std::int64_t{2},
          std::int64_t{3}, std::int64_t{4}, std::int64_t{5},
          std::int64_t{77}});
  std::int64_t bits;
  std::memcpy(&bits, out, 8);
  EXPECT_EQ(bits, 77);
}

TEST(Machine, FmaIsSingleRounding) {
  // std::fma semantics: (a*b+c) differs from separate mul+add in the last
  // bit for adversarial inputs.
  const double a = 1.0 + std::ldexp(1.0, -30);
  const double b = 1.0 - std::ldexp(1.0, -30);
  const double c = -1.0;
  double mem[3] = {a, b, c};
  MInstList l;
  l.push_back(vload(Vr::v1, mem_bd(Gpr::rdi, 0), 1, true));
  l.push_back(vload(Vr::v2, mem_bd(Gpr::rdi, 8), 1, true));
  l.push_back(vload(Vr::v0, mem_bd(Gpr::rdi, 16), 1, true));
  l.push_back(vfma231(Vr::v0, Vr::v1, Vr::v2, 1));
  l.push_back(ret());
  Machine m(l);
  EXPECT_DOUBLE_EQ(m.call({static_cast<double*>(mem)}), std::fma(a, b, c));
}

TEST(Machine, ShufflePermuteBlendSemantics) {
  double in[4] = {10, 11, 12, 13};
  double out[4] = {0, 0, 0, 0};
  MInstList l;
  l.push_back(vload(Vr::v1, mem_bd(Gpr::rdi, 0), 4, true));
  // vperm2f128 $1: [hi, lo] of the same source → [12 13 10 11].
  l.push_back(vperm128(Vr::v2, Vr::v1, Vr::v1, 0x01));
  // blend lanes 1 and 3 from v2: [10, 13, 12, 11].
  l.push_back(vblend(Vr::v3, Vr::v1, Vr::v2, 0b1010, 4, true));
  l.push_back(vstore(Vr::v3, mem_bd(Gpr::rsi, 0), 4, true));
  l.push_back(ret());
  Machine m(l);
  m.call({static_cast<double*>(in), static_cast<double*>(out)});
  EXPECT_DOUBLE_EQ(out[0], 10);
  EXPECT_DOUBLE_EQ(out[1], 13);
  EXPECT_DOUBLE_EQ(out[2], 12);
  EXPECT_DOUBLE_EQ(out[3], 11);
}

TEST(Machine, BroadcastAndExtract) {
  double in[1] = {6.25};
  double out[2] = {0, 0};
  MInstList l;
  l.push_back(vbroadcast(Vr::v1, mem_bd(Gpr::rdi, 0), 4, true));
  l.push_back(vextract_high(Vr::v2, Vr::v1));
  l.push_back(vstore(Vr::v2, mem_bd(Gpr::rsi, 0), 2, true));
  l.push_back(ret());
  Machine m(l);
  m.call({static_cast<double*>(in), static_cast<double*>(out)});
  EXPECT_DOUBLE_EQ(out[0], 6.25);
  EXPECT_DOUBLE_EQ(out[1], 6.25);
}

TEST(Machine, StepLimitCatchesRunawayLoops) {
  MInstList l;
  l.push_back(label("spin"));
  l.push_back(jmp("spin"));
  Machine m(l);
  m.set_step_limit(1000);
  EXPECT_THROW(m.call({}), Error);
  EXPECT_GE(m.steps_executed(), 1000);
}

TEST(Machine, UnknownJumpTargetRejectedAtLoad) {
  MInstList l;
  l.push_back(jmp("nowhere"));
  EXPECT_THROW(Machine m(l), Error);
}

TEST(Machine, DuplicateLabelRejected) {
  MInstList l;
  l.push_back(label("x"));
  l.push_back(label("x"));
  EXPECT_THROW(Machine m(l), Error);
}

TEST(Machine, FallingOffTheEndThrows) {
  MInstList l;
  l.push_back(imov_imm(Gpr::rax, 1));
  Machine m(l);
  EXPECT_THROW(m.call({}), Error);
}

TEST(Machine, VZeroUpperClearsHighLanes) {
  double in[4] = {1, 2, 3, 4};
  double out[4] = {9, 9, 9, 9};
  MInstList l;
  l.push_back(vload(Vr::v1, mem_bd(Gpr::rdi, 0), 4, true));
  l.push_back(vzeroupper());
  l.push_back(vstore(Vr::v1, mem_bd(Gpr::rsi, 0), 4, true));
  l.push_back(ret());
  Machine m(l);
  m.call({static_cast<double*>(in), static_cast<double*>(out)});
  EXPECT_DOUBLE_EQ(out[0], 1);
  EXPECT_DOUBLE_EQ(out[1], 2);
  EXPECT_DOUBLE_EQ(out[2], 0);
  EXPECT_DOUBLE_EQ(out[3], 0);
}

}  // namespace
}  // namespace augem::vm
