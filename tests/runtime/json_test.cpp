#include "runtime/json.hpp"

#include <gtest/gtest.h>

namespace augem::runtime {
namespace {

TEST(Json, DumpIsCompactSortedAndIntegerExact) {
  Json j = Json::object();
  j["b"] = Json(2);
  j["a"] = Json(1.5);
  j["s"] = Json("hi");
  j["flag"] = Json(true);
  // Keys sorted, no whitespace, integers without a fractional part.
  EXPECT_EQ(j.dump(), "{\"a\":1.5,\"b\":2,\"flag\":true,\"s\":\"hi\"}");
}

TEST(Json, ParseDumpRoundTrip) {
  const std::string text =
      "{\"arr\":[1,2,3],\"nested\":{\"x\":null,\"y\":false},\"pi\":3.25}";
  const auto doc = parse_json(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->dump(), text);
}

TEST(Json, StringEscapesRoundTrip) {
  Json j = Json::object();
  j["s"] = Json(std::string("a\"b\\c\nd\te"));
  const auto back = parse_json(j.dump());
  ASSERT_TRUE(back.has_value());
  const auto s = back->string("s");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, "a\"b\\c\nd\te");
}

TEST(Json, TypedHelpersReturnNulloptOnMissingOrWrongType) {
  const auto doc = parse_json("{\"n\":4,\"s\":\"x\",\"b\":true}");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->number("n"), 4.0);
  EXPECT_EQ(doc->string("s"), "x");
  EXPECT_EQ(doc->boolean("b"), true);
  EXPECT_FALSE(doc->number("s").has_value());   // wrong type
  EXPECT_FALSE(doc->string("n").has_value());   // wrong type
  EXPECT_FALSE(doc->boolean("n").has_value());  // wrong type
  EXPECT_FALSE(doc->number("missing").has_value());
}

TEST(Json, MalformedInputsReturnNulloptNotThrow) {
  // This tolerance is what makes a corrupt database line a skipped record
  // instead of a crash.
  for (const char* bad :
       {"", "{", "}", "[1,", "{\"a\":}", "{\"a\":1,}", "tru", "\"unterminated",
        "{\"a\":1} trailing", "nan", "{\"a\" 1}", "[1 2]"}) {
    EXPECT_FALSE(parse_json(bad).has_value()) << "input: " << bad;
  }
}

TEST(Json, DepthLimitRejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_FALSE(parse_json(deep).has_value());
  // Reasonable nesting still parses.
  EXPECT_TRUE(parse_json("[[[[[[[[1]]]]]]]]").has_value());
}

TEST(Json, WhitespaceTolerated) {
  const auto doc = parse_json("  { \"a\" : [ 1 , 2 ] , \"b\" : null }  ");
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->get("a"), nullptr);
  EXPECT_EQ(doc->get("a")->items().size(), 2u);
}

}  // namespace
}  // namespace augem::runtime
