#include "runtime/dispatch.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "runtime/runtime_blas.hpp"
#include "support/rng.hpp"

namespace augem::runtime {
namespace {

using frontend::KernelKind;

/// Private cache directory per test; the tiny workload keeps each cold
/// tuner run at CI speed.
class DispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/augem_dispatch_test_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    TuningDatabase(dir_).purge();
    ::rmdir(dir_.c_str());
  }

  RuntimeConfig config() const {
    RuntimeConfig cfg;
    cfg.cache_dir = dir_;
    cfg.use_persistent = true;
    tuning::TuneWorkload w;
    w.mc = 32;
    w.nc = 32;
    w.kc = 64;
    w.vec_len = 2048;
    w.reps = 1;
    cfg.workload_override = w;
    return cfg;
  }

  std::string dir_;
};

/// Drives all four primitive kernels through a runtime-backed Blas on
/// fixed seeds and packs every output into one vector, so two drivers can
/// be compared bit-for-bit with a single memcmp.
std::vector<double> drive_all_kinds(blas::Blas& lib) {
  std::vector<double> out;

  {  // DGEMM, ragged to exercise the padded tile edges.
    const blas::index_t m = 37, n = 29, k = 23;
    Rng rng(3);
    std::vector<double> a(static_cast<std::size_t>(m * k));
    std::vector<double> b(static_cast<std::size_t>(k * n));
    std::vector<double> c(static_cast<std::size_t>(m * n));
    for (double& v : a) v = rng.uniform(-1.0, 1.0);
    for (double& v : b) v = rng.uniform(-1.0, 1.0);
    for (double& v : c) v = rng.uniform(-1.0, 1.0);
    lib.gemm(blas::Trans::kNo, blas::Trans::kNo, m, n, k, 1.5, a.data(), m,
             b.data(), k, -0.5, c.data(), m);
    out.insert(out.end(), c.begin(), c.end());
  }
  {  // DGEMV.
    const blas::index_t m = 53, n = 41;
    Rng rng(5);
    std::vector<double> a(static_cast<std::size_t>(m * n));
    std::vector<double> x(static_cast<std::size_t>(n));
    std::vector<double> y(static_cast<std::size_t>(m));
    for (double& v : a) v = rng.uniform(-1.0, 1.0);
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
    for (double& v : y) v = rng.uniform(-1.0, 1.0);
    lib.gemv(m, n, 2.0, a.data(), m, x.data(), 0.5, y.data());
    out.insert(out.end(), y.begin(), y.end());
  }
  {  // DAXPY.
    const blas::index_t n = 1001;
    Rng rng(7);
    std::vector<double> x(static_cast<std::size_t>(n));
    std::vector<double> y(static_cast<std::size_t>(n));
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
    for (double& v : y) v = rng.uniform(-1.0, 1.0);
    lib.axpy(n, 1.25, x.data(), y.data());
    out.insert(out.end(), y.begin(), y.end());
  }
  {  // DDOT.
    const blas::index_t n = 777;
    Rng rng(9);
    std::vector<double> x(static_cast<std::size_t>(n));
    std::vector<double> y(static_cast<std::size_t>(n));
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
    for (double& v : y) v = rng.uniform(-1.0, 1.0);
    out.push_back(lib.dot(n, x.data(), y.data()));
  }
  return out;
}

TEST_F(DispatchTest, ColdThenWarmAcrossRuntimesBitIdenticalAllKinds) {
  // Cold runtime: empty directory, so every kind tunes, builds, stores.
  KernelRuntime cold(config());
  auto cold_blas = make_runtime_blas(cold);
  const std::vector<double> cold_out = drive_all_kinds(*cold_blas);
  EXPECT_GE(cold.counters().tuner_runs, 4u);  // gemm + gemv + axpy + dot
  EXPECT_GE(cold.counters().builds, 4u);

  // Warm runtime on the same directory (a second process): the database
  // serves every variant and regeneration from the persisted parameters
  // must reproduce bit-identical numerics for all four kernel kinds.
  KernelRuntime warm(config());
  auto warm_blas = make_runtime_blas(warm);
  const std::vector<double> warm_out = drive_all_kinds(*warm_blas);
  EXPECT_EQ(warm.counters().tuner_runs, 0u);
  EXPECT_GE(warm.counters().db_hits, 4u);
  ASSERT_EQ(warm_out.size(), cold_out.size());
  EXPECT_EQ(std::memcmp(warm_out.data(), cold_out.data(),
                        cold_out.size() * sizeof(double)),
            0);

  // And the dispatched numerics are right, not merely reproducible: spot
  // check the DDOT tail against a plain scalar accumulation.
  const blas::index_t n = 777;
  Rng rng(9);
  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<double> y(static_cast<std::size_t>(n));
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  for (double& v : y) v = rng.uniform(-1.0, 1.0);
  double ref = 0.0;
  for (blas::index_t i = 0; i < n; ++i) ref += x[i] * y[i];
  EXPECT_NEAR(cold_out.back(), ref, 1e-9 * std::abs(ref) + 1e-12);
}

TEST_F(DispatchTest, RepeatedCallsServeTheCodeCache) {
  KernelRuntime rt(config());
  const auto first = rt.resolve(KernelKind::kAxpy, ShapeClass::kSmall);
  const auto before = rt.code_stats();
  const auto second = rt.resolve(KernelKind::kAxpy, ShapeClass::kSmall);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(rt.code_stats().hits, before.hits + 1);
  EXPECT_EQ(rt.counters().builds, 1u);
}

TEST_F(DispatchTest, ShapeClassesGetDistinctEntries) {
  KernelRuntime rt(config());
  const auto small = rt.resolve(KernelKind::kGemm, ShapeClass::kSmall);
  const auto large = rt.resolve(KernelKind::kGemm, ShapeClass::kLarge);
  EXPECT_NE(small.get(), large.get());
  EXPECT_EQ(small->key.shape, ShapeClass::kSmall);
  EXPECT_EQ(large->key.shape, ShapeClass::kLarge);
  EXPECT_GE(small->mr, 1);  // GEMM kernels carry their register tile
  EXPECT_GE(small->nr, 1);
  ASSERT_NE(rt.database(), nullptr);
  EXPECT_EQ(rt.database()->entries().size(), 2u);
}

TEST_F(DispatchTest, ConcurrentResolveOneBuildPerKey) {
  // The whole-stack version of the code-cache dedup test: many threads hit
  // one cold key, exactly one tuner run and one build happen, and every
  // thread gets the same module. Run under -DAUGEM_SANITIZE=thread this is
  // the subsystem's race gate.
  KernelRuntime rt(config());
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const CachedKernel>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      results[t] = rt.resolve(KernelKind::kDot, ShapeClass::kLarge);
    });
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(results[t].get(), results[0].get());
  EXPECT_EQ(rt.counters().builds, 1u);
  EXPECT_EQ(rt.counters().tuner_runs, 1u);
}

TEST_F(DispatchTest, TuneOnMissFalseServesDefaultsWithoutTuner) {
  RuntimeConfig cfg = config();
  cfg.tune_on_miss = false;
  KernelRuntime rt(cfg);
  const auto kernel = rt.resolve(KernelKind::kGemv, ShapeClass::kLarge);
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(rt.counters().tuner_runs, 0u);
  EXPECT_EQ(rt.counters().builds, 1u);
}

TEST_F(DispatchTest, MemoryOnlyRuntimeWritesNothing) {
  RuntimeConfig cfg = config();
  cfg.use_persistent = false;
  KernelRuntime rt(cfg);
  (void)rt.resolve(KernelKind::kAxpy, ShapeClass::kSmall);
  EXPECT_EQ(rt.database(), nullptr);
  // No database file appears in the directory.
  TuningDatabase observer(dir_);
  EXPECT_EQ(observer.entries().size(), 0u);
}

TEST_F(DispatchTest, DispatchIsaIsNativelyExecutable) {
  KernelRuntime rt(config());
  EXPECT_TRUE(host_arch().supports(rt.dispatch_isa()));
  EXPECT_EQ(rt.dispatch_isa(), select_dispatch_isa(host_arch()));
}

TEST(TuneWorkloadFor, ShapeAwareWorkloads) {
  // The small-regime workload must time smaller blocks than the large one,
  // or the stored variant would not reflect the regime it serves.
  const auto small = tune_workload_for(KernelKind::kGemm, ShapeClass::kSmall);
  const auto large = tune_workload_for(KernelKind::kGemm, ShapeClass::kLarge);
  EXPECT_LT(small.mc * small.nc * small.kc, large.mc * large.nc * large.kc);
  const auto vec_small =
      tune_workload_for(KernelKind::kAxpy, ShapeClass::kSmall);
  const auto vec_large =
      tune_workload_for(KernelKind::kAxpy, ShapeClass::kLarge);
  EXPECT_LT(vec_small.vec_len, vec_large.vec_len);
}

}  // namespace
}  // namespace augem::runtime
