#include "runtime/codecache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace augem::runtime {
namespace {

/// Keys whose cpu field distinguishes them; one shard in most tests so the
/// global LRU order is deterministic.
KernelKey key_named(const std::string& name) {
  KernelKey key;
  key.cpu = name;
  return key;
}

/// A builder that fabricates a CachedKernel without touching the JIT: the
/// cache only moves shared_ptrs around, it never calls into the module.
CodeCache::Builder fake_builder(const std::string& name,
                                std::atomic<int>* build_count = nullptr) {
  return [name, build_count] {
    if (build_count != nullptr) build_count->fetch_add(1);
    auto kernel = std::make_shared<CachedKernel>();
    kernel->key = key_named(name);
    kernel->symbol = name;
    return kernel;
  };
}

TEST(CodeCache, MissBuildsThenHitsServeResident) {
  CodeCache cache(/*capacity=*/4, /*shards=*/1);
  std::atomic<int> builds{0};
  const auto first = cache.get_or_build(key_named("a"), fake_builder("a", &builds));
  const auto second = cache.get_or_build(key_named("a"), fake_builder("a", &builds));
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(first.get(), second.get());  // same resident module
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CodeCache, LruEvictsLeastRecentlyUsed) {
  CodeCache cache(/*capacity=*/3, /*shards=*/1);
  (void)cache.get_or_build(key_named("a"), fake_builder("a"));
  (void)cache.get_or_build(key_named("b"), fake_builder("b"));
  (void)cache.get_or_build(key_named("c"), fake_builder("c"));
  // Touch "a" so "b" becomes the coldest entry…
  (void)cache.get_or_build(key_named("a"), fake_builder("a"));
  // …then overflow: "b" must be the victim.
  (void)cache.get_or_build(key_named("d"), fake_builder("d"));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 3u);
  const auto keys = cache.resident_keys();
  // Most recently used first: d, a, c — and no b anywhere.
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], key_named("d").to_string());
  EXPECT_EQ(keys[1], key_named("a").to_string());
  EXPECT_EQ(keys[2], key_named("c").to_string());
  // "b" rebuilds on next request (miss, not hit).
  std::atomic<int> rebuilds{0};
  (void)cache.get_or_build(key_named("b"), fake_builder("b", &rebuilds));
  EXPECT_EQ(rebuilds.load(), 1);
}

TEST(CodeCache, EvictedEntrySurvivesWhileHeld) {
  CodeCache cache(/*capacity=*/1, /*shards=*/1);
  const auto held = cache.get_or_build(key_named("a"), fake_builder("a"));
  (void)cache.get_or_build(key_named("b"), fake_builder("b"));  // evicts "a"
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The caller's shared_ptr keeps the artifact alive past eviction.
  EXPECT_EQ(held->symbol, "a");
}

TEST(CodeCache, LookupPeeksWithoutBuilding) {
  CodeCache cache(/*capacity=*/4, /*shards=*/1);
  EXPECT_EQ(cache.lookup(key_named("a")), nullptr);
  (void)cache.get_or_build(key_named("a"), fake_builder("a"));
  const auto found = cache.lookup(key_named("a"));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->symbol, "a");
}

TEST(CodeCache, ConcurrentSameKeyBuildsExactlyOnce) {
  // The dedup contract the dispatcher relies on: N threads racing on one
  // cold key perform one build and all receive the same module.
  CodeCache cache(/*capacity=*/8, /*shards=*/4);
  std::atomic<int> builds{0};
  const CodeCache::Builder slow = [&builds] {
    builds.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto kernel = std::make_shared<CachedKernel>();
    kernel->key = key_named("hot");
    kernel->symbol = "hot";
    return kernel;
  };
  constexpr int kThreads = 8;
  std::vector<CodeCache::KernelPtr> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back(
        [&, t] { results[t] = cache.get_or_build(key_named("hot"), slow); });
  for (auto& th : threads) th.join();
  EXPECT_EQ(builds.load(), 1);
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(results[t].get(), results[0].get());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(CodeCache, ConcurrentDistinctKeysAllResolve) {
  CodeCache cache(/*capacity=*/64, /*shards=*/4);
  constexpr int kThreads = 8;
  std::atomic<int> builds{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      const std::string name = "k" + std::to_string(t);
      const auto kernel =
          cache.get_or_build(key_named(name), fake_builder(name, &builds));
      EXPECT_EQ(kernel->symbol, name);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(builds.load(), kThreads);
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kThreads));
}

TEST(CodeCache, FailedBuildPropagatesAndRetries) {
  CodeCache cache(/*capacity=*/4, /*shards=*/1);
  int attempts = 0;
  const CodeCache::Builder flaky = [&attempts]() -> CodeCache::KernelPtr {
    if (++attempts == 1) throw std::runtime_error("assembler unavailable");
    auto kernel = std::make_shared<CachedKernel>();
    kernel->key = key_named("a");
    kernel->symbol = "a";
    return kernel;
  };
  EXPECT_THROW((void)cache.get_or_build(key_named("a"), flaky),
               std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);  // the failed entry must not linger
  const auto kernel = cache.get_or_build(key_named("a"), flaky);
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(kernel->symbol, "a");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CodeCache, EraseDropsTheEntryButNeverTheHeldModule) {
  // The promotion path (KernelRuntime::invalidate) erases a served entry so
  // the next resolve rebuilds from the updated database; callers holding
  // the old module must keep a valid mapping.
  CodeCache cache(/*capacity=*/4, /*shards=*/1);
  const auto held = cache.get_or_build(key_named("a"), fake_builder("a"));
  EXPECT_FALSE(cache.erase(key_named("missing")));
  EXPECT_TRUE(cache.erase(key_named("a")));
  EXPECT_FALSE(cache.erase(key_named("a")));  // already gone
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(key_named("a")), nullptr);
  EXPECT_EQ(held->symbol, "a");  // the caller's shared_ptr still works
  // The next request is a rebuild, not a hit on a stale entry.
  std::atomic<int> rebuilds{0};
  (void)cache.get_or_build(key_named("a"), fake_builder("a", &rebuilds));
  EXPECT_EQ(rebuilds.load(), 1);
}

// Run under ThreadSanitizer (cmake -DAUGEM_SANITIZE=thread) this is the
// regression test for the eviction/resolve race: a capacity-1 shard where
// every insert evicts, one thread churning builds and erasing while others
// resolve and *use* their kernels through the returned shared_ptr. An
// eviction that unmapped a held module would be a use-after-free here; the
// contract is that eviction only drops the cache's reference.
TEST(CodeCache, EvictionRacingResolveNeverInvalidatesHeldKernels) {
  CodeCache cache(/*capacity=*/1, /*shards=*/1);
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};

  std::thread churn([&] {
    int i = 0;
    while (!stop.load()) {
      const std::string name = "churn" + std::to_string(i++ % 8);
      const auto k = cache.get_or_build(key_named(name), fake_builder(name));
      if (k->symbol != name) bad.fetch_add(1);
      (void)cache.erase(key_named("hot"));  // concurrent invalidate
    }
  });

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r)
    readers.emplace_back([&] {
      for (int iter = 0; iter < 2000; ++iter) {
        const auto held =
            cache.get_or_build(key_named("hot"), fake_builder("hot"));
        // Touch the kernel *after* the churn thread has had every chance
        // to evict or erase it from the shard.
        if (held->symbol != "hot" || held->key.cpu != "hot") bad.fetch_add(1);
      }
    });
  for (auto& th : readers) th.join();
  stop.store(true);
  churn.join();
  EXPECT_EQ(bad.load(), 0);
  // Sanity: the capacity-1 shard really was thrashing.
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(CodeCache, ClearEmptiesEveryShard)  {
  CodeCache cache(/*capacity=*/16, /*shards=*/4);
  for (int i = 0; i < 6; ++i) {
    const std::string name = "k" + std::to_string(i);
    (void)cache.get_or_build(key_named(name), fake_builder(name));
  }
  EXPECT_GT(cache.size(), 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.resident_keys().empty());
}

}  // namespace
}  // namespace augem::runtime
