#include "runtime/tunedb.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

namespace augem::runtime {
namespace {

using frontend::KernelKind;

/// Private database directory per test, removed on teardown.
class TuneDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/augem_tunedb_test_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    TuningDatabase(dir_).purge();
    ::rmdir(dir_.c_str());
  }

  static KernelKey test_key(KernelKind kind = KernelKind::kGemm,
                            ShapeClass shape = ShapeClass::kLarge) {
    KernelKey key;
    key.cpu = "testcpu_vfma3_l32.256.8192";
    key.kind = kind;
    key.isa = Isa::kFma3;
    key.shape = shape;
    return key;
  }

  static TunedVariant test_variant(double mflops = 1000.0) {
    TunedVariant v;
    v.params.mr = 4;
    v.params.nr = 4;
    v.params.ku = 2;
    v.params.unroll = 16;
    v.params.prefetch.enabled = true;
    v.params.prefetch.distance = 64;
    v.strategy = opt::VecStrategy::kShuf;
    v.mflops = mflops;
    return v;
  }

  void append_raw(const std::string& line) {
    std::ofstream out(TuningDatabase(dir_).file_path(), std::ios::app);
    out << line << "\n";
  }

  std::string dir_;
};

TEST_F(TuneDbTest, RoundTripAcrossStoreInstances) {
  // The warm-start contract: a second instance (standing in for a second
  // process) replays what the first one stored.
  {
    TuningDatabase db(dir_);
    TunedVariant miss;
    EXPECT_FALSE(db.lookup(test_key(), miss));
    db.store(test_key(), test_variant());
  }
  TuningDatabase db2(dir_);
  TunedVariant got;
  ASSERT_TRUE(db2.lookup(test_key(), got));
  EXPECT_EQ(got.params.mr, 4);
  EXPECT_EQ(got.params.nr, 4);
  EXPECT_EQ(got.params.ku, 2);
  EXPECT_EQ(got.params.unroll, 16);
  EXPECT_TRUE(got.params.prefetch.enabled);
  EXPECT_EQ(got.params.prefetch.distance, 64);
  EXPECT_EQ(got.strategy, opt::VecStrategy::kShuf);
  EXPECT_EQ(got.mflops, 1000.0);
  EXPECT_EQ(db2.skipped_records(), 0u);
}

TEST_F(TuneDbTest, SearchMetaAndTrialLogRoundTripWithBothInfeasibleReasons) {
  // ISSUE PR10 satellite: the split infeasible-reason enum must survive the
  // record codec — a planner-rejected and a regalloc-exhausted trial both
  // appear in the decoded log with their reasons intact, alongside the
  // search metadata (64-bit seed included).
  TunedVariant v = test_variant(2500.0);
  v.search = tuning::SearchMeta{};
  v.search->algorithm = "hillclimb";
  v.search->seed = 0xdeadbeefcafe1234ull;  // exercises the 64-bit path
  v.search->budget_trials = 30;
  v.search->budget_seconds = 12.5;
  v.search->grid_size = 240;
  v.search->trials_run = 3;
  v.search->restarts_used = 1;
  v.search->elapsed_seconds = 0.75;
  v.search->wall_capped = true;
  v.search->synthetic = true;

  tuning::Trial ok;
  ok.params = v.params;
  ok.strategy = v.strategy;
  ok.mflops = 2500.0;
  ok.ci_half = 12.0;
  ok.feasible = true;

  tuning::Trial planner;
  planner.params.mr = 16;
  planner.params.nr = 8;
  planner.feasible = false;
  planner.reason = tuning::InfeasibleReason::kPlannerRejected;

  tuning::Trial regalloc;
  regalloc.params.mr = 8;
  regalloc.params.nr = 8;
  regalloc.feasible = false;
  regalloc.reason = tuning::InfeasibleReason::kRegallocExhausted;

  v.trial_log = {ok, planner, regalloc};

  const Json rec = encode_db_record(test_key(), v);
  const std::optional<DbEntry> got = decode_db_record(rec);
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->variant.search.has_value());
  const tuning::SearchMeta& m = *got->variant.search;
  EXPECT_EQ(m.algorithm, "hillclimb");
  EXPECT_EQ(m.seed, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(m.budget_trials, 30);
  EXPECT_EQ(m.budget_seconds, 12.5);
  EXPECT_EQ(m.grid_size, 240);
  EXPECT_EQ(m.trials_run, 3);
  EXPECT_EQ(m.restarts_used, 1);
  EXPECT_EQ(m.elapsed_seconds, 0.75);
  EXPECT_TRUE(m.wall_capped);
  EXPECT_TRUE(m.synthetic);

  const std::vector<tuning::Trial>& log = got->variant.trial_log;
  ASSERT_EQ(log.size(), 3u);
  EXPECT_TRUE(log[0].feasible);
  EXPECT_EQ(log[0].mflops, 2500.0);
  EXPECT_EQ(log[0].ci_half, 12.0);
  EXPECT_EQ(log[0].reason, tuning::InfeasibleReason::kNone);
  EXPECT_FALSE(log[1].feasible);
  EXPECT_EQ(log[1].reason, tuning::InfeasibleReason::kPlannerRejected);
  EXPECT_EQ(log[1].params.mr, 16);
  EXPECT_FALSE(log[2].feasible);
  EXPECT_EQ(log[2].reason, tuning::InfeasibleReason::kRegallocExhausted);
  // Both split reasons render distinctly in the human-readable trace.
  EXPECT_NE(log[1].describe().find("planner rejected"), std::string::npos);
  EXPECT_NE(log[2].describe().find("regalloc exhausted"), std::string::npos);
}

TEST_F(TuneDbTest, MalformedSearchSectionIsDroppedNotFatal) {
  // Tolerant decode: a record with a garbled "search" section keeps the
  // variant (last-good params) and just loses the provenance.
  Json rec = encode_db_record(test_key(), test_variant());
  Json bad = Json::object();
  bad["algorithm"] = Json(7);  // wrong type
  rec["search"] = bad;
  const std::optional<DbEntry> got = decode_db_record(rec);
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->variant.search.has_value());
  EXPECT_EQ(got->variant.params.mr, 4);
}

TEST_F(TuneDbTest, LastEntryWinsOnReplay) {
  {
    TuningDatabase db(dir_);
    db.store(test_key(), test_variant(100.0));
    db.store(test_key(), test_variant(2500.0));
  }
  TuningDatabase db2(dir_);
  TunedVariant got;
  ASSERT_TRUE(db2.lookup(test_key(), got));
  EXPECT_EQ(got.mflops, 2500.0);
  EXPECT_EQ(db2.entries().size(), 1u);  // one live entry, two file lines
}

TEST_F(TuneDbTest, KeysAreIndependent) {
  TuningDatabase db(dir_);
  db.store(test_key(KernelKind::kGemm, ShapeClass::kLarge), test_variant(1.0));
  db.store(test_key(KernelKind::kGemm, ShapeClass::kSmall), test_variant(2.0));
  db.store(test_key(KernelKind::kAxpy, ShapeClass::kLarge), test_variant(3.0));
  EXPECT_EQ(db.entries().size(), 3u);
  TunedVariant got;
  ASSERT_TRUE(db.lookup(test_key(KernelKind::kGemm, ShapeClass::kSmall), got));
  EXPECT_EQ(got.mflops, 2.0);
  EXPECT_FALSE(db.lookup(test_key(KernelKind::kDot, ShapeClass::kLarge), got));
}

TEST_F(TuneDbTest, CorruptAndTruncatedLinesAreSkippedNotFatal) {
  {
    TuningDatabase db(dir_);
    db.store(test_key(), test_variant(42.0));
  }
  // Simulate every corruption mode the contract covers: binary garbage, a
  // syntactically truncated record (torn write), a record from a foreign
  // schema, a structurally valid record with implausible parameters, and a
  // blank line (which is tolerated silently, not counted).
  append_raw("\x01\x02 not json at all");
  append_raw("{\"schema\":1,\"cpu\":\"trunc");
  append_raw("{\"schema\":999,\"cpu\":\"x\"}");
  append_raw(
      "{\"schema\":1,\"cpu\":\"c\",\"kind\":\"gemm\",\"isa\":\"FMA3\","
      "\"dtype\":\"f64\",\"shape\":\"large\",\"mr\":0,\"nr\":4,\"ku\":1,"
      "\"unroll\":8,\"prefetch\":false,\"strategy\":\"vdup\",\"mflops\":1}");
  append_raw("");

  TuningDatabase db2(dir_);
  EXPECT_EQ(db2.skipped_records(), 4u);
  TunedVariant got;
  ASSERT_TRUE(db2.lookup(test_key(), got));  // the good record survives
  EXPECT_EQ(got.mflops, 42.0);

  // Storing after recovery re-appends cleanly and a third replay is whole.
  db2.store(test_key(KernelKind::kDot, ShapeClass::kSmall), test_variant());
  TuningDatabase db3(dir_);
  EXPECT_EQ(db3.entries().size(), 2u);
}

TEST_F(TuneDbTest, ReplayStatsBreakRecoveriesDownByCategory) {
  // The fleet-health contract behind `augem_tunedb list --json` and the
  // daemon's `stats` request: skipped lines are attributed to a category,
  // not folded into one opaque number.
  {
    TuningDatabase db(dir_);
    db.store(test_key(), test_variant(42.0));
  }
  append_raw("\x01\x02 not json at all");         // parse error
  append_raw("{\"schema\":1,\"cpu\":\"trunc");    // parse error (torn write)
  append_raw("{\"schema\":999,\"cpu\":\"x\"}");   // foreign schema
  append_raw("{\"cpu\":\"x\"}");                  // missing schema
  append_raw(
      "{\"schema\":1,\"cpu\":\"c\",\"kind\":\"gemm\",\"isa\":\"FMA3\","
      "\"dtype\":\"f64\",\"shape\":\"large\",\"mr\":0,\"nr\":4,\"ku\":1,"
      "\"unroll\":8,\"prefetch\":false,\"strategy\":\"vdup\",\"mflops\":1}");
  append_raw("");  // blank: tolerated silently, not a line

  TuningDatabase db2(dir_);
  const ReplayStats s = db2.replay_stats();
  EXPECT_EQ(s.total_lines, 6u);  // 1 good + 5 corrupt, blank not counted
  EXPECT_EQ(s.parse_errors, 2u);
  EXPECT_EQ(s.schema_mismatches, 2u);
  EXPECT_EQ(s.invalid_records, 1u);
  EXPECT_EQ(s.live_entries, 1u);
  EXPECT_EQ(s.skipped(), 5u);
  EXPECT_EQ(db2.skipped_records(), s.skipped());

  // The JSON rendering carries every field (what the CLI/daemon expose).
  const Json j = s.to_json();
  EXPECT_EQ(j.number("total_lines").value_or(-1), 6.0);
  EXPECT_EQ(j.number("parse_errors").value_or(-1), 2.0);
  EXPECT_EQ(j.number("schema_mismatches").value_or(-1), 2.0);
  EXPECT_EQ(j.number("invalid_records").value_or(-1), 1.0);
  EXPECT_EQ(j.number("live_entries").value_or(-1), 1.0);
}

TEST_F(TuneDbTest, ConcurrentProcessesNeverTearLines) {
  // The flock-around-append contract: writer *processes* (not threads)
  // hammering the same file must produce a replayable database with zero
  // skipped lines — no interleaved partial records.
  constexpr int kWriters = 4;
  constexpr int kEach = 32;
  std::vector<pid_t> pids;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      TuningDatabase db(dir_);
      for (int i = 0; i < kEach; ++i) {
        KernelKey key = test_key();
        key.cpu = "writer" + std::to_string(w) + "_key" + std::to_string(i);
        db.store(key, test_variant(static_cast<double>(i)));
      }
      _exit(0);  // no gtest teardown in the child
    }
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  TuningDatabase db(dir_);
  const ReplayStats s = db.replay_stats();
  EXPECT_EQ(s.skipped(), 0u);
  EXPECT_EQ(s.total_lines, static_cast<std::uint64_t>(kWriters * kEach));
  EXPECT_EQ(db.entries().size(), static_cast<std::size_t>(kWriters * kEach));
}

TEST_F(TuneDbTest, WholeFileGarbageDegradesToColdCache) {
  append_raw("complete nonsense");
  append_raw("[1,2,3]");  // valid JSON, wrong shape
  TuningDatabase db(dir_);
  EXPECT_EQ(db.entries().size(), 0u);
  EXPECT_EQ(db.skipped_records(), 2u);
  // Still writable.
  db.store(test_key(), test_variant());
  TunedVariant got;
  EXPECT_TRUE(db.lookup(test_key(), got));
}

TEST_F(TuneDbTest, PurgeDeletesFileAndMemory) {
  TuningDatabase db(dir_);
  db.store(test_key(), test_variant());
  db.purge();
  EXPECT_EQ(db.entries().size(), 0u);
  std::ifstream in(db.file_path());
  EXPECT_FALSE(in.good());
  TunedVariant got;
  EXPECT_FALSE(db.lookup(test_key(), got));
}

TEST_F(TuneDbTest, ReloadPicksUpForeignAppends) {
  TuningDatabase writer(dir_);
  TuningDatabase reader(dir_);
  writer.store(test_key(), test_variant(7.0));
  TunedVariant got;
  EXPECT_FALSE(reader.lookup(test_key(), got));  // replayed before the write
  reader.reload();
  ASSERT_TRUE(reader.lookup(test_key(), got));
  EXPECT_EQ(got.mflops, 7.0);
}

TEST_F(TuneDbTest, VersionedFileName) {
  TuningDatabase db(dir_);
  EXPECT_NE(db.file_path().find("tunedb-v1.jsonl"), std::string::npos);
}

TEST(TuneDbEnv, CacheDirAndDisableFlagsHonored) {
  // Scoped env manipulation; restore whatever was set before.
  const char* old_dir = std::getenv("AUGEM_CACHE_DIR");
  const std::string saved_dir = old_dir ? old_dir : "";
  const char* old_dis = std::getenv("AUGEM_DISABLE_TUNE_CACHE");
  const std::string saved_dis = old_dis ? old_dis : "";

  ::setenv("AUGEM_CACHE_DIR", "/tmp/augem_env_test", 1);
  EXPECT_EQ(default_cache_dir(), "/tmp/augem_env_test");

  ::unsetenv("AUGEM_DISABLE_TUNE_CACHE");
  EXPECT_FALSE(tune_cache_disabled());
  ::setenv("AUGEM_DISABLE_TUNE_CACHE", "0", 1);
  EXPECT_FALSE(tune_cache_disabled());  // explicit "0" means enabled
  ::setenv("AUGEM_DISABLE_TUNE_CACHE", "1", 1);
  EXPECT_TRUE(tune_cache_disabled());

  if (old_dir) ::setenv("AUGEM_CACHE_DIR", saved_dir.c_str(), 1);
  else ::unsetenv("AUGEM_CACHE_DIR");
  if (old_dis) ::setenv("AUGEM_DISABLE_TUNE_CACHE", saved_dis.c_str(), 1);
  else ::unsetenv("AUGEM_DISABLE_TUNE_CACHE");
}

}  // namespace
}  // namespace augem::runtime
