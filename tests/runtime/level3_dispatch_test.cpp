// RuntimeBlas serves the five Table-6 Level-3 routines through the JIT
// cache: the panel GEMMs run generated block kernels resolved per call
// shape, and every variant must agree with the scalar reference.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "blas/reference.hpp"
#include "runtime/dispatch.hpp"
#include "runtime/runtime_blas.hpp"
#include "support/rng.hpp"

namespace augem::runtime {
namespace {

using blas::at;
using blas::index_t;
using blas::Side;
using blas::Trans;
using blas::Uplo;

constexpr Side kSides[] = {Side::kLeft, Side::kRight};
constexpr Uplo kUplos[] = {Uplo::kLower, Uplo::kUpper};
constexpr Trans kTranses[] = {Trans::kNo, Trans::kYes};

/// Hermetic runtime: in-memory cache, untuned defaults (CI speed).
RuntimeConfig memory_config() {
  RuntimeConfig cfg;
  cfg.use_persistent = false;
  cfg.tune_on_miss = false;
  return cfg;
}

class RuntimeLevel3 : public ::testing::Test {
 protected:
  KernelRuntime rt_{memory_config()};
  std::unique_ptr<blas::Blas> lib_ = make_runtime_blas(rt_);
  Rng rng_{5150};
};

TEST_F(RuntimeLevel3, SymmAllVariants) {
  const index_t m = 67, n = 31;
  for (Side side : kSides)
    for (Uplo uplo : kUplos) {
      const index_t ka = side == Side::kLeft ? m : n;
      std::vector<double> a(static_cast<std::size_t>(ka * ka)),
          b(static_cast<std::size_t>(m * n)), c(static_cast<std::size_t>(m * n));
      rng_.fill(a);
      rng_.fill(b);
      rng_.fill(c);
      std::vector<double> want = c;
      lib_->symm(side, uplo, m, n, 1.5, a.data(), ka, b.data(), m, -0.25,
                 c.data(), m);
      blas::ref::symm(side, uplo, m, n, 1.5, a.data(), ka, b.data(), m, -0.25,
                      want.data(), m);
      for (std::size_t i = 0; i < c.size(); ++i)
        ASSERT_NEAR(c[i], want[i], 1e-10)
            << i << " side=" << static_cast<int>(side)
            << " uplo=" << static_cast<int>(uplo);
    }
}

TEST_F(RuntimeLevel3, SyrkAndSyr2kAllVariants) {
  const index_t n = 59, k = 21;
  for (Uplo uplo : kUplos)
    for (Trans trans : kTranses) {
      const index_t ld = trans == Trans::kNo ? n : k;
      std::vector<double> a(static_cast<std::size_t>(n * k)),
          b(static_cast<std::size_t>(n * k)), c(static_cast<std::size_t>(n * n));
      rng_.fill(a);
      rng_.fill(b);
      rng_.fill(c);
      std::vector<double> want = c;
      lib_->syrk(uplo, trans, n, k, 1.25, a.data(), ld, 0.5, c.data(), n);
      blas::ref::syrk(uplo, trans, n, k, 1.25, a.data(), ld, 0.5, want.data(),
                      n);
      lib_->syr2k(uplo, trans, n, k, -0.75, a.data(), ld, b.data(), ld, 1.0,
                  c.data(), n);
      blas::ref::syr2k(uplo, trans, n, k, -0.75, a.data(), ld, b.data(), ld,
                       1.0, want.data(), n);
      for (std::size_t i = 0; i < c.size(); ++i)
        ASSERT_NEAR(c[i], want[i], 1e-9)
            << i << " uplo=" << static_cast<int>(uplo)
            << " trans=" << static_cast<int>(trans);
    }
}

TEST_F(RuntimeLevel3, TrmmRoundTripsTrsmAllVariants) {
  const index_t m = 67, n = 23;
  for (Side side : kSides)
    for (Uplo uplo : kUplos)
      for (Trans trans : kTranses) {
        const index_t ka = side == Side::kLeft ? m : n;
        std::vector<double> a(static_cast<std::size_t>(ka * ka)),
            b(static_cast<std::size_t>(m * n));
        rng_.fill(a);
        for (index_t i = 0; i < ka; ++i)
          at(a.data(), ka, i, i) = 4.0 + i % 3;
        rng_.fill(b);
        const std::vector<double> orig = b;
        lib_->trmm(side, uplo, trans, m, n, 2.0, a.data(), ka, b.data(), m);
        lib_->trsm(side, uplo, trans, m, n, 0.5, a.data(), ka, b.data(), m);
        for (std::size_t i = 0; i < b.size(); ++i)
          ASSERT_NEAR(b[i], orig[i], 1e-8)
              << i << " side=" << static_cast<int>(side)
              << " uplo=" << static_cast<int>(uplo)
              << " trans=" << static_cast<int>(trans);
      }
}

TEST_F(RuntimeLevel3, PanelGemmsResolveShapeMatchedKernels) {
  // The Level-3 panels go through the same shape-classified GEMM entries as
  // plain gemm calls: a small SYRK must populate the small-regime key, not
  // the cache-blocked one.
  const index_t n = 12, k = 8;
  std::vector<double> a(static_cast<std::size_t>(n * k)),
      c(static_cast<std::size_t>(n * n), 0.0);
  rng_.fill(a);
  lib_->syrk(Uplo::kLower, Trans::kNo, n, k, 1.0, a.data(), n, 0.0, c.data(),
             n);
  const auto small = rt_.resolve(frontend::KernelKind::kGemm,
                                 classify_gemm_shape(n, n, k));
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(small->key.shape, classify_gemm_shape(n, n, k));
  // Served from the cache the syrk call populated — no extra build.
  const auto builds = rt_.counters().builds;
  (void)rt_.resolve(frontend::KernelKind::kGemm, classify_gemm_shape(n, n, k));
  EXPECT_EQ(rt_.counters().builds, builds);
}

TEST_F(RuntimeLevel3, DegenerateAndAlphaZeroShortCircuitTheRuntime) {
  // No kernel resolution may happen for calls that never touch a panel.
  const auto builds = rt_.counters().builds;
  lib_->symm(Side::kLeft, Uplo::kLower, 0, 5, 1.0, nullptr, 1, nullptr, 1,
             2.0, nullptr, 1);
  lib_->trmm(Side::kRight, Uplo::kUpper, Trans::kYes, 4, -1, 1.0, nullptr, 1,
             nullptr, 1);
  std::vector<double> c(9, 1.0);
  lib_->syrk(Uplo::kUpper, Trans::kNo, 3, 4, 0.0, nullptr, 1, 0.5, c.data(),
             3);
  EXPECT_EQ(rt_.counters().builds, builds);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i <= j; ++i) EXPECT_EQ(at(c.data(), 3, i, j), 0.5);
  // The batch fast path short-circuits alpha == 0 the same way: operands
  // unread (no 0 * Inf = NaN), no kernel resolved, only the epilogue runs.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> a(4, inf), bmat(4, inf), cb(4, 2.0);
  lib_->gemm_batch_strided(2, 2, 2, 0.0, a.data(), 2, 4, bmat.data(), 2, 4,
                           0.5, cb.data(), 2, 4, 1, nullptr, 0, false);
  EXPECT_EQ(rt_.counters().builds, builds);
  for (double v : cb) EXPECT_EQ(v, 1.0);
}

}  // namespace
}  // namespace augem::runtime
