#include "runtime/key.hpp"

#include <gtest/gtest.h>

#include <cctype>

namespace augem::runtime {
namespace {

using frontend::KernelKind;

TEST(ShapeClassify, GemmRegimes) {
  // At or under one 64-cube of work: small.
  EXPECT_EQ(classify_gemm_shape(64, 64, 64), ShapeClass::kSmall);
  EXPECT_EQ(classify_gemm_shape(8, 8, 8), ShapeClass::kSmall);
  // Just past the cube with balanced extents: large.
  EXPECT_EQ(classify_gemm_shape(65, 65, 65), ShapeClass::kLarge);
  EXPECT_EQ(classify_gemm_shape(512, 512, 512), ShapeClass::kLarge);
  // Starved C extent: skinny (either absolutely thin or 8x imbalanced).
  EXPECT_EQ(classify_gemm_shape(1000, 16, 1000), ShapeClass::kSkinny);
  EXPECT_EQ(classify_gemm_shape(16, 1000, 1000), ShapeClass::kSkinny);
  EXPECT_EQ(classify_gemm_shape(2000, 100, 100), ShapeClass::kSkinny);
  // k does not enter the skinny test: a deep but square-C problem is large.
  EXPECT_EQ(classify_gemm_shape(128, 128, 4096), ShapeClass::kLarge);
}

TEST(ShapeClassify, DegenerateExtentsStillKeyed) {
  EXPECT_EQ(classify_gemm_shape(0, 0, 0), ShapeClass::kSmall);
  EXPECT_EQ(classify_gemm_shape(-5, 10, 10), ShapeClass::kSmall);
}

TEST(ShapeClassify, VectorRegimes) {
  EXPECT_EQ(classify_vector_shape(1), ShapeClass::kSmall);
  EXPECT_EQ(classify_vector_shape(4096), ShapeClass::kSmall);
  EXPECT_EQ(classify_vector_shape(4097), ShapeClass::kLarge);
  EXPECT_EQ(classify_vector_shape(0), ShapeClass::kSmall);
}

TEST(KeyParse, EnumNamesRoundTrip) {
  for (ShapeClass s :
       {ShapeClass::kSmall, ShapeClass::kSkinny, ShapeClass::kLarge})
    EXPECT_EQ(parse_shape_class(shape_class_name(s)), s);
  for (KernelKind k : {KernelKind::kGemm, KernelKind::kGemv, KernelKind::kAxpy,
                       KernelKind::kDot, KernelKind::kScal})
    EXPECT_EQ(parse_kernel_kind(frontend::kernel_kind_name(k)), k);
  for (Isa isa : {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4})
    EXPECT_EQ(parse_isa(isa_name(isa)), isa);
  EXPECT_FALSE(parse_shape_class("tall").has_value());
  EXPECT_FALSE(parse_kernel_kind("trsm").has_value());
  EXPECT_FALSE(parse_isa("AVX512").has_value());
}

TEST(KeyFormat, ToStringIsCanonical) {
  KernelKey key;
  key.cpu = "testcpu_vfma3_l32.256.8192";
  key.kind = KernelKind::kGemm;
  key.isa = Isa::kFma3;
  key.shape = ShapeClass::kLarge;
  EXPECT_EQ(key.to_string(), "gemm/FMA3/f64/large@testcpu_vfma3_l32.256.8192");
}

TEST(KeyFormat, CpuSignatureIsSanitizedAndStable) {
  CpuArch arch;
  arch.name = "Weird CPU (R) @ 3.5GHz!";
  arch.has_fma3 = true;
  const std::string sig = cpu_signature(arch);
  EXPECT_FALSE(sig.empty());
  for (char c : sig)
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
                c == '_' || c == '-')
        << "unsanitized char in " << sig;
  // Deterministic: the same arch always signs identically.
  EXPECT_EQ(sig, cpu_signature(arch));
  // Feature bits change the signature (a tuned kernel must not survive a
  // microarchitecture change that alters which code wins).
  CpuArch other = arch;
  other.has_fma3 = false;
  other.has_avx = true;
  EXPECT_NE(cpu_signature(other), sig);
}

TEST(Dispatch, IsaLadderPrefersFma3ThenAvxThenSse2) {
  CpuArch arch;
  EXPECT_EQ(select_dispatch_isa(arch), Isa::kSse2);
  arch.has_avx = true;
  EXPECT_EQ(select_dispatch_isa(arch), Isa::kAvx);
  arch.has_fma3 = true;
  EXPECT_EQ(select_dispatch_isa(arch), Isa::kFma3);
  // FMA4 is never dispatched: every modeled FMA4 machine also has FMA3.
  arch.has_fma4 = true;
  EXPECT_EQ(select_dispatch_isa(arch), Isa::kFma3);
}

TEST(Dispatch, HostKernelKeyIsExecutable) {
  const KernelKey key = host_kernel_key(KernelKind::kAxpy, ShapeClass::kSmall);
  EXPECT_FALSE(key.cpu.empty());
  EXPECT_EQ(key.dtype, "f64");
  EXPECT_TRUE(host_arch().supports(key.isa));
}

}  // namespace
}  // namespace augem::runtime
