#include "match/identifier.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "frontend/kernels.hpp"
#include "ir/visit.hpp"
#include "transform/ckernel.hpp"

namespace augem::match {
namespace {

using namespace augem::ir;
using frontend::BLayout;
using frontend::KernelKind;

Kernel optimized(KernelKind kind, transform::CGenParams p = {},
                 BLayout layout = BLayout::kRowPanel) {
  p.prefetch.enabled = false;  // keep test expectations focused on templates
  return transform::generate_optimized_c(kind, layout, p);
}

std::vector<const Region*> regions_of_kind(const MatchResult& r,
                                           TemplateKind k) {
  std::vector<const Region*> out;
  for (const Region& region : r.regions)
    if (region.kind == k) out.push_back(&region);
  return out;
}

TEST(Identifier, GemmFindsAllPaperTemplates) {
  transform::CGenParams p;
  p.mr = 2;
  p.nr = 2;
  p.ku = 1;
  Kernel k = optimized(KernelKind::kGemm, p);
  MatchResult r = identify_templates(k);

  // One mmUnrolledCOMP with 2×2 instances (paper Fig. 14 lines 13-19).
  auto comps = regions_of_kind(r, TemplateKind::kMmComp);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0]->mm.size(), 4u);
  EXPECT_EQ(comps[0]->shape, UnrolledShape::kOuter);
  EXPECT_EQ(comps[0]->n1, 2);
  EXPECT_EQ(comps[0]->n2, 2);
  EXPECT_TRUE(comps[0]->b_contiguous);
  EXPECT_EQ(comps[0]->name(), "mmUnrolledCOMP");

  // Two mmUnrolledSTOREs, one per C cursor (paper Fig. 14 lines 21-24).
  auto stores = regions_of_kind(r, TemplateKind::kMmStore);
  ASSERT_EQ(stores.size(), 2u);
  EXPECT_EQ(stores[0]->stores.size(), 2u);
  EXPECT_EQ(stores[1]->stores.size(), 2u);
  EXPECT_NE(stores[0]->stores[0].arr, stores[1]->stores[0].arr);
  EXPECT_EQ(stores[0]->name(), "mmUnrolledSTORE");

  // One accINIT region zeroing all four accumulators.
  auto inits = regions_of_kind(r, TemplateKind::kAccInit);
  ASSERT_EQ(inits.size(), 1u);
  EXPECT_EQ(inits[0]->acc_inits.size(), 4u);
}

TEST(Identifier, GemmOuterShapeOffsetsAndAccumulators) {
  transform::CGenParams p;
  p.mr = 4;
  p.nr = 2;
  Kernel k = optimized(KernelKind::kGemm, p);
  MatchResult r = identify_templates(k);
  auto comps = regions_of_kind(r, TemplateKind::kMmComp);
  ASSERT_EQ(comps.size(), 1u);
  const Region& c = *comps[0];
  EXPECT_EQ(c.n1 * c.n2, 8);
  // Accumulators all distinct.
  std::set<std::string> accs;
  for (const MmComp& m : c.mm) accs.insert(m.res);
  EXPECT_EQ(accs.size(), 8u);
  // A offsets span 0..3, B offsets span 0..1 (or vice versa).
  std::set<std::int64_t> a_offs, b_offs;
  for (const MmComp& m : c.mm) {
    a_offs.insert(m.off_a);
    b_offs.insert(m.off_b);
  }
  EXPECT_EQ(a_offs.size() * b_offs.size(), 8u);
}

TEST(Identifier, GemmInnerUnrollMakesKuRegions) {
  transform::CGenParams p;
  p.mr = 2;
  p.nr = 2;
  p.ku = 2;
  Kernel k = optimized(KernelKind::kGemm, p);
  MatchResult r = identify_templates(k);
  // ku=2 duplicates the tile body (cursor advances split the runs), and the
  // remainder l-loop holds one more → 3 mmUnrolledCOMP regions.
  auto comps = regions_of_kind(r, TemplateKind::kMmComp);
  EXPECT_EQ(comps.size(), 3u);
  for (const Region* c : comps) EXPECT_EQ(c->shape, UnrolledShape::kOuter);
}

TEST(Identifier, DotIsPairedSharedAccumulator) {
  transform::CGenParams p;
  p.unroll = 8;
  Kernel k = optimized(KernelKind::kDot, p);
  MatchResult r = identify_templates(k);
  auto comps = regions_of_kind(r, TemplateKind::kMmComp);
  // Main loop region (8 paired instances) + remainder region (1 instance).
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0]->shape, UnrolledShape::kPaired);
  EXPECT_EQ(comps[0]->mm.size(), 8u);
  EXPECT_EQ(comps[0]->mm[0].res, comps[0]->mm[7].res);
  EXPECT_FALSE(comps[1]->unrolled());
}

TEST(Identifier, AxpyIsPairedMvComp) {
  transform::CGenParams p;
  p.unroll = 4;
  Kernel k = optimized(KernelKind::kAxpy, p);
  MatchResult r = identify_templates(k);
  auto mvs = regions_of_kind(r, TemplateKind::kMvComp);
  ASSERT_EQ(mvs.size(), 2u);  // main + remainder
  EXPECT_EQ(mvs[0]->shape, UnrolledShape::kPaired);
  EXPECT_EQ(mvs[0]->mv.size(), 4u);
  EXPECT_EQ(mvs[0]->mv[0].scal, "alpha");
  EXPECT_EQ(mvs[0]->name(), "mvUnrolledCOMP");
}

TEST(Identifier, GemvIsPairedMvCompWithLoadedScal) {
  transform::CGenParams p;
  p.unroll = 4;
  Kernel k = optimized(KernelKind::kGemv, p);
  MatchResult r = identify_templates(k);
  auto mvs = regions_of_kind(r, TemplateKind::kMvComp);
  ASSERT_EQ(mvs.size(), 2u);
  EXPECT_EQ(mvs[0]->shape, UnrolledShape::kPaired);
  EXPECT_EQ(mvs[0]->mv[0].scal, "scal");
  // The streamed array is the A cursor; the updated array is the y cursor.
  EXPECT_NE(mvs[0]->mv[0].arr_a, mvs[0]->mv[0].arr_b);
}

TEST(Identifier, TagsAreAppliedToStatements) {
  transform::CGenParams p;
  p.mr = 2;
  p.nr = 2;
  Kernel k = optimized(KernelKind::kGemm, p);
  identify_templates(k);
  int tagged = 0, untagged_assigns = 0;
  for_each_stmt(k.body(), [&](const Stmt& s) {
    if (s.kind() != StmtKind::kAssign) return;
    if (s.template_tag().empty()) {
      ++untagged_assigns;
    } else {
      ++tagged;
    }
  });
  // 4 inits + 4*4 comp stmts + 4*3 store stmts = 32 tagged.
  EXPECT_EQ(tagged, 32);
  // Cursor inits and advances stay untagged.
  EXPECT_GT(untagged_assigns, 0);
}

TEST(Identifier, LivenessTracksAccumulatorLastRead) {
  transform::CGenParams p;
  p.mr = 2;
  p.nr = 2;
  Kernel k = optimized(KernelKind::kGemm, p);
  MatchResult r = identify_templates(k);
  // Every accumulator's last read is in an mmSTORE region.
  auto comps = regions_of_kind(r, TemplateKind::kMmComp);
  for (const MmComp& m : comps[0]->mm) {
    ASSERT_TRUE(r.last_read_region.count(m.res));
    const int region = r.last_read_region.at(m.res);
    ASSERT_GE(region, 0);
    ASSERT_LT(region, static_cast<int>(r.regions.size()));
    EXPECT_EQ(r.regions[region].kind, TemplateKind::kMmStore);
  }
}

TEST(Identifier, DotReturnPinsAccumulator) {
  Kernel k = optimized(KernelKind::kDot);
  MatchResult r = identify_templates(k);
  ASSERT_TRUE(r.last_read_region.count("res"));
  EXPECT_EQ(r.last_read_region.at("res"), MatchResult::kReadBeyondRegions);
}

TEST(Identifier, ColMajorGemmStillMatchesOuter) {
  transform::CGenParams p;
  p.mr = 4;
  p.nr = 2;
  Kernel k = optimized(KernelKind::kGemm, p, BLayout::kColMajor);
  MatchResult r = identify_templates(k);
  auto comps = regions_of_kind(r, TemplateKind::kMmComp);
  ASSERT_EQ(comps.size(), 1u);
  // With B[j*kc+l] the two j columns live on distinct cursors: the outer
  // shape still holds (Vdup applies), but Shuf's contiguity precondition
  // does not.
  EXPECT_EQ(comps[0]->shape, UnrolledShape::kOuter);
  EXPECT_EQ(comps[0]->mm.size(), 8u);
  EXPECT_FALSE(comps[0]->b_contiguous);
}

TEST(Identifier, SimpleKernelWithoutPipelineMatchesNothing) {
  // Subscripts are not strength-reduced: the matcher requires constant
  // offsets and finds no regions.
  Kernel k = frontend::make_gemm_kernel();
  MatchResult r = identify_templates(k);
  // Only the trivial accumulator zeroing matches; no COMP/STORE regions.
  for (const Region& region : r.regions)
    EXPECT_EQ(region.kind, TemplateKind::kAccInit);
}

TEST(Identifier, KindNames) {
  EXPECT_STREQ(template_kind_name(TemplateKind::kMmComp), "mmCOMP");
  EXPECT_STREQ(template_kind_name(TemplateKind::kMvComp), "mvCOMP");
  EXPECT_STREQ(template_kind_name(TemplateKind::kMmStore), "mmSTORE");
  EXPECT_STREQ(template_kind_name(TemplateKind::kAccInit), "accINIT");
}

}  // namespace
}  // namespace augem::match
