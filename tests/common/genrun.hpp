#pragma once
// End-to-end helpers: build a kernel through the full AUGEM pipeline
// (simple C → optimized C → templates → assembly) and execute the result
// either in the machine-IR VM or natively via the JIT, comparing against
// the reference oracle.

#include <gtest/gtest.h>

#include <vector>

#include "asmgen/codegen.hpp"
#include "frontend/kernels.hpp"
#include "jit/jit.hpp"
#include "support/buffer.hpp"
#include "transform/ckernel.hpp"
#include "vm/machine.hpp"
#include "../common/oracle.hpp"

namespace augem::testing {

inline asmgen::GeneratedKernel build_kernel(frontend::KernelKind kind,
                                            const transform::CGenParams& p,
                                            const opt::OptConfig& cfg,
                                            frontend::BLayout layout =
                                                frontend::BLayout::kRowPanel) {
  ir::Kernel k = transform::generate_optimized_c(kind, layout, p);
  return asmgen::generate_assembly(std::move(k), cfg);
}

enum class Runner { kVm, kJit };

// ---- GEMM ----------------------------------------------------------------

inline void run_gemm(const asmgen::GeneratedKernel& g, Runner runner,
                     std::int64_t mc, std::int64_t nc, std::int64_t kc,
                     std::int64_t ldc, frontend::BLayout layout,
                     unsigned seed = 1) {
  Rng rng(seed);
  DoubleBuffer a(static_cast<std::size_t>(mc * kc));
  DoubleBuffer b(static_cast<std::size_t>(nc * kc));
  DoubleBuffer c(static_cast<std::size_t>(nc * ldc));
  rng.fill(a.span());
  rng.fill(b.span());
  rng.fill(c.span());
  std::vector<double> c_ref(c.begin(), c.end());

  if (runner == Runner::kVm) {
    vm::Machine m(g.insts);
    m.call({mc, nc, kc, static_cast<const double*>(a.data()),
            static_cast<const double*>(b.data()), c.data(), ldc});
  } else {
    jit::CompiledModule mod = jit::assemble(g.asm_text);
    auto* fn = mod.fn<void(long, long, long, const double*, const double*,
                           double*, long)>(g.name);
    fn(mc, nc, kc, a.data(), b.data(), c.data(), ldc);
  }

  ref_gemm_block(mc, nc, kc, a.data(), b.data(), c_ref.data(), ldc, layout);
  const double tol = 1e-12 * static_cast<double>(kc);
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_NEAR(c[i], c_ref[i], tol) << "C[" << i << "]";
}

// ---- GEMV ----------------------------------------------------------------

inline void run_gemv(const asmgen::GeneratedKernel& g, Runner runner,
                     std::int64_t m, std::int64_t n, std::int64_t lda,
                     unsigned seed = 1) {
  Rng rng(seed);
  DoubleBuffer a(static_cast<std::size_t>(n * lda));
  DoubleBuffer x(static_cast<std::size_t>(n));
  DoubleBuffer y(static_cast<std::size_t>(m));
  rng.fill(a.span());
  rng.fill(x.span());
  rng.fill(y.span());
  std::vector<double> y_ref(y.begin(), y.end());

  if (runner == Runner::kVm) {
    vm::Machine machine(g.insts);
    machine.call({m, n, static_cast<const double*>(a.data()), lda,
                  static_cast<const double*>(x.data()), y.data()});
  } else {
    jit::CompiledModule mod = jit::assemble(g.asm_text);
    auto* fn = mod.fn<void(long, long, const double*, long, const double*,
                           double*)>(g.name);
    fn(m, n, a.data(), lda, x.data(), y.data());
  }

  ref_gemv(m, n, a.data(), lda, x.data(), y_ref.data());
  const double tol = 1e-12 * static_cast<double>(n);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], y_ref[i], tol) << "y[" << i << "]";
}

// ---- AXPY ----------------------------------------------------------------

inline void run_axpy(const asmgen::GeneratedKernel& g, Runner runner,
                     std::int64_t n, unsigned seed = 1) {
  Rng rng(seed);
  const double alpha = -0.75;
  DoubleBuffer x(static_cast<std::size_t>(n));
  DoubleBuffer y(static_cast<std::size_t>(n));
  rng.fill(x.span());
  rng.fill(y.span());
  std::vector<double> y_ref(y.begin(), y.end());

  if (runner == Runner::kVm) {
    vm::Machine machine(g.insts);
    machine.call({n, alpha, static_cast<const double*>(x.data()), y.data()});
  } else {
    jit::CompiledModule mod = jit::assemble(g.asm_text);
    auto* fn = mod.fn<void(long, double, const double*, double*)>(g.name);
    fn(n, alpha, x.data(), y.data());
  }

  ref_axpy(n, alpha, x.data(), y_ref.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], y_ref[i], 1e-13) << "y[" << i << "]";
}

// ---- DOT -----------------------------------------------------------------

inline void run_dot(const asmgen::GeneratedKernel& g, Runner runner,
                    std::int64_t n, unsigned seed = 1) {
  Rng rng(seed);
  DoubleBuffer x(static_cast<std::size_t>(n));
  DoubleBuffer y(static_cast<std::size_t>(n));
  rng.fill(x.span());
  rng.fill(y.span());

  double got = 0.0;
  if (runner == Runner::kVm) {
    vm::Machine machine(g.insts);
    got = machine.call({n, static_cast<const double*>(x.data()),
                        static_cast<const double*>(y.data())});
  } else {
    jit::CompiledModule mod = jit::assemble(g.asm_text);
    auto* fn = mod.fn<double(long, const double*, const double*)>(g.name);
    got = fn(n, x.data(), y.data());
  }

  const double want = ref_dot(n, x.data(), y.data());
  ASSERT_NEAR(got, want, 1e-12 * static_cast<double>(n > 0 ? n : 1));
}

}  // namespace augem::testing
