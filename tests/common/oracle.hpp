#pragma once
// Shared test oracle: straightforward C++ reference implementations of the
// four kernel semantics (over the packed layouts the kernels use), plus
// helpers to run an IR kernel in the interpreter against random data and
// compare. Used by transform, match, opt, asmgen, vm and jit tests.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "frontend/kernels.hpp"
#include "ir/interp.hpp"
#include "support/rng.hpp"

namespace augem::testing {

/// C[j*ldc+i] += sum_l A[l*mc+i] * B_elem(l,j) — the GEMM kernel contract.
inline void ref_gemm_block(std::int64_t mc, std::int64_t nc, std::int64_t kc,
                           const double* a, const double* b, double* c,
                           std::int64_t ldc, frontend::BLayout layout) {
  for (std::int64_t j = 0; j < nc; ++j)
    for (std::int64_t i = 0; i < mc; ++i) {
      double res = 0.0;
      for (std::int64_t l = 0; l < kc; ++l) {
        const double bv = layout == frontend::BLayout::kRowPanel
                              ? b[l * nc + j]
                              : b[j * kc + l];
        res += a[l * mc + i] * bv;
      }
      c[j * ldc + i] += res;
    }
}

/// y[j] += A[i*lda+j] * x[i] — the GEMV kernel contract (A column-major).
inline void ref_gemv(std::int64_t m, std::int64_t n, const double* a,
                     std::int64_t lda, const double* x, double* y) {
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < m; ++j) y[j] += a[i * lda + j] * x[i];
}

/// y[i] += x[i] * alpha.
inline void ref_axpy(std::int64_t n, double alpha, const double* x, double* y) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += x[i] * alpha;
}

/// sum_i x[i] * y[i].
inline double ref_dot(std::int64_t n, const double* x, const double* y) {
  double res = 0.0;
  for (std::int64_t i = 0; i < n; ++i) res += x[i] * y[i];
  return res;
}

inline std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  rng.fill(v);
  return v;
}

/// Element-wise comparison with a tolerance scaled for reassociated sums of
/// length `depth` with O(1) inputs.
inline void expect_allclose(const std::vector<double>& got,
                            const std::vector<double>& want,
                            std::int64_t depth = 1) {
  ASSERT_EQ(got.size(), want.size());
  const double tol = 1e-13 * static_cast<double>(depth > 0 ? depth : 1);
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_NEAR(got[i], want[i], tol) << "at index " << i;
}

/// Runs a GEMM-shaped IR kernel in the interpreter and checks it against
/// ref_gemm_block on random data.
inline void check_gemm_kernel_semantics(const ir::Kernel& kernel,
                                        frontend::BLayout layout,
                                        std::int64_t mc, std::int64_t nc,
                                        std::int64_t kc, std::int64_t ldc,
                                        unsigned seed = 1) {
  Rng rng(seed);
  std::vector<double> a = random_vec(static_cast<std::size_t>(mc * kc), rng);
  std::vector<double> b = random_vec(static_cast<std::size_t>(nc * kc), rng);
  std::vector<double> c = random_vec(static_cast<std::size_t>(nc * ldc), rng);
  std::vector<double> c_ref = c;

  ir::Env env;
  env["mc"] = mc;
  env["nc"] = nc;
  env["kc"] = kc;
  env["ldc"] = ldc;
  env["A"] = a.data();
  env["B"] = b.data();
  env["C"] = c.data();
  ir::interpret(kernel, std::move(env));

  ref_gemm_block(mc, nc, kc, a.data(), b.data(), c_ref.data(), ldc, layout);
  expect_allclose(c, c_ref, kc);
}

inline void check_gemv_kernel_semantics(const ir::Kernel& kernel,
                                        std::int64_t m, std::int64_t n,
                                        std::int64_t lda, unsigned seed = 1) {
  Rng rng(seed);
  std::vector<double> a = random_vec(static_cast<std::size_t>(n * lda), rng);
  std::vector<double> x = random_vec(static_cast<std::size_t>(n), rng);
  std::vector<double> y = random_vec(static_cast<std::size_t>(m), rng);
  std::vector<double> y_ref = y;

  ir::Env env;
  env["m"] = m;
  env["n"] = n;
  env["A"] = a.data();
  env["lda"] = lda;
  env["x"] = x.data();
  env["y"] = y.data();
  ir::interpret(kernel, std::move(env));

  ref_gemv(m, n, a.data(), lda, x.data(), y_ref.data());
  expect_allclose(y, y_ref, n);
}

inline void check_axpy_kernel_semantics(const ir::Kernel& kernel,
                                        std::int64_t n, unsigned seed = 1) {
  Rng rng(seed);
  const double alpha = 1.7;
  std::vector<double> x = random_vec(static_cast<std::size_t>(n), rng);
  std::vector<double> y = random_vec(static_cast<std::size_t>(n), rng);
  std::vector<double> y_ref = y;

  ir::Env env;
  env["n"] = n;
  env["alpha"] = alpha;
  env["x"] = x.data();
  env["y"] = y.data();
  ir::interpret(kernel, std::move(env));

  ref_axpy(n, alpha, x.data(), y_ref.data());
  expect_allclose(y, y_ref);
}

inline void check_dot_kernel_semantics(const ir::Kernel& kernel, std::int64_t n,
                                       unsigned seed = 1) {
  Rng rng(seed);
  std::vector<double> x = random_vec(static_cast<std::size_t>(n), rng);
  std::vector<double> y = random_vec(static_cast<std::size_t>(n), rng);

  ir::Env env;
  env["n"] = n;
  env["x"] = x.data();
  env["y"] = y.data();
  const double got = ir::interpret(kernel, std::move(env));
  const double want = ref_dot(n, x.data(), y.data());
  ASSERT_NEAR(got, want, 1e-13 * static_cast<double>(n));
}

}  // namespace augem::testing
