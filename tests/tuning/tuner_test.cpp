#include "tuning/tuner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "support/arch.hpp"

namespace augem::tuning {
namespace {

using frontend::KernelKind;

TuneWorkload quick_workload() {
  TuneWorkload w;
  w.mc = 64;
  w.nc = 32;
  w.kc = 64;
  w.vec_len = 2048;
  w.reps = 2;
  return w;
}

TEST(Tuner, GemmSearchFindsFeasibleWinner) {
  const TuneResult r = tune_gemm(host_arch().best_native_isa(), quick_workload());
  EXPECT_GT(r.mflops, 0.0);
  EXPECT_GE(r.params.mr, 1);
  EXPECT_GE(r.params.nr, 1);
  // The trial log records every candidate, feasible or not.
  EXPECT_GE(r.trials.size(), 8u);
  int feasible = 0;
  for (const Trial& t : r.trials) feasible += t.feasible ? 1 : 0;
  EXPECT_GT(feasible, 0);
  // The winner's score appears among the trials.
  bool winner_logged = false;
  for (const Trial& t : r.trials) winner_logged |= t.mflops == r.mflops;
  EXPECT_TRUE(winner_logged);
}

TEST(Tuner, GemmSearchIncludesShufCandidate) {
  const TuneResult r = tune_gemm(host_arch().best_native_isa(), quick_workload());
  bool has_shuf = false;
  for (const Trial& t : r.trials)
    has_shuf |= t.strategy == opt::VecStrategy::kShuf;
  EXPECT_TRUE(has_shuf);
}

TEST(Tuner, Level1SearchSweepsUnroll) {
  const TuneResult r =
      tune_level1(KernelKind::kDot, host_arch().best_native_isa(), quick_workload());
  EXPECT_GT(r.mflops, 0.0);
  // The climb measures the start point plus at least its first neighbor
  // round, and never more than the grid.
  EXPECT_GE(r.trials.size(), 5u);
  EXPECT_LE(r.trials.size(),
            static_cast<std::size_t>(SearchSpace::level1().grid_size()));
  EXPECT_EQ(r.kind, KernelKind::kDot);
}

TEST(Tuner, Level1RejectsGemm) {
  EXPECT_THROW(tune_level1(KernelKind::kGemm, Isa::kSse2, quick_workload()),
               Error);
}

TEST(Tuner, DriverSweepCoversThreadsAndBlockSizes) {
  // Cheap kernel + tiny workload: the point is the sweep structure, not
  // the timings.
  const blas::BlockKernel naive = [](blas::index_t mc, blas::index_t nc,
                                     blas::index_t kc, const double* pa,
                                     const double* pb, double* c,
                                     blas::index_t ldc) {
    for (blas::index_t j = 0; j < nc; ++j)
      for (blas::index_t i = 0; i < mc; ++i) {
        double acc = 0.0;
        for (blas::index_t l = 0; l < kc; ++l)
          acc += pa[l * mc + i] * pb[l * nc + j];
        blas::at(c, ldc, i, j) += acc;
      }
  };
  const blas::BlockSizes base{32, 64, 32};
  const DriverTuneResult r = tune_driver(naive, base, 64, 64, 64, 1);
  EXPECT_GT(r.mflops, 0.0);
  EXPECT_GE(r.threads, 1);
  // 4 block-size variants × every candidate thread count, all logged.
  ASSERT_FALSE(r.trials.empty());
  EXPECT_EQ(r.trials.size() % 4, 0u);
  bool has_serial = false, winner_logged = false;
  for (const DriverTrial& t : r.trials) {
    has_serial |= t.threads == 1;
    winner_logged |= t.mflops == r.mflops;
  }
  EXPECT_TRUE(has_serial);
  EXPECT_TRUE(winner_logged);
  // The winner round-trips into a usable context.
  const blas::GemmContext ctx = r.context();
  EXPECT_EQ(ctx.threads, r.threads);
  EXPECT_EQ(ctx.sizes.mc, r.sizes.mc);
  EXPECT_FALSE(r.report().empty());
}

TEST(Tuner, ReportMentionsEveryTrial) {
  const TuneResult r =
      tune_level1(KernelKind::kAxpy, host_arch().best_native_isa(), quick_workload());
  const std::string report = r.report();
  EXPECT_NE(report.find("best:"), std::string::npos);
  EXPECT_NE(report.find("axpy"), std::string::npos);
  EXPECT_NE(report.find("MFLOPS"), std::string::npos);
}

TEST(Tuner, SaveLoadRoundTrip) {
  const std::string path = "/tmp/augem_tuner_test_cache.txt";
  std::remove(path.c_str());

  TuneResult r = tune_level1(KernelKind::kAxpy, host_arch().best_native_isa(),
                             quick_workload());
  save_result(r, path);

  TuneResult loaded;
  ASSERT_TRUE(load_result(KernelKind::kAxpy, r.config.isa, path, loaded));
  EXPECT_EQ(loaded.params.unroll, r.params.unroll);
  EXPECT_EQ(loaded.config.isa, r.config.isa);

  // Wrong kind / ISA miss.
  TuneResult miss;
  EXPECT_FALSE(load_result(KernelKind::kDot, r.config.isa, path, miss));
  std::remove(path.c_str());
}

TEST(Tuner, LoadFromMissingFileFails) {
  TuneResult out;
  EXPECT_FALSE(load_result(KernelKind::kAxpy, Isa::kSse2,
                           "/tmp/does_not_exist_augem.txt", out));
}

// ---- search policy tests (docs/tuning.md) --------------------------------

SearchOptions synthetic_opts(std::uint64_t seed = 7) {
  SearchOptions o;
  o.seed = seed;
  o.synthetic = true;
  return o;
}

TEST(Search, MetaRecordsBudgetSeedAndGrid) {
  SearchOptions o = synthetic_opts(42);
  const TuneResult r =
      tune_gemm(host_arch().best_native_isa(), quick_workload(), o);
  EXPECT_EQ(r.search.algorithm, "hillclimb");
  EXPECT_EQ(r.search.seed, 42u);
  EXPECT_EQ(r.search.grid_size,
            SearchSpace::gemm(host_arch().best_native_isa()).grid_size());
  EXPECT_EQ(r.search.trials_run, static_cast<int>(r.trials.size()));
  EXPECT_GT(r.search.budget_trials, 0);
  // The default budget is at most a quarter of the exhaustive grid.
  EXPECT_LE(r.search.budget_trials, r.search.grid_size / 4);
  EXPECT_LE(static_cast<int>(r.trials.size()), r.search.budget_trials);
  EXPECT_TRUE(r.search.synthetic);
}

TEST(Search, SameSeedReproducesIdenticalTrialSequence) {
  const Isa isa = host_arch().best_native_isa();
  const TuneResult a = tune_gemm(isa, quick_workload(), synthetic_opts(99));
  const TuneResult b = tune_gemm(isa, quick_workload(), synthetic_opts(99));
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].params.mr, b.trials[i].params.mr) << i;
    EXPECT_EQ(a.trials[i].params.nr, b.trials[i].params.nr) << i;
    EXPECT_EQ(a.trials[i].params.ku, b.trials[i].params.ku) << i;
    EXPECT_EQ(a.trials[i].params.prefetch.enabled,
              b.trials[i].params.prefetch.enabled) << i;
    EXPECT_EQ(a.trials[i].params.prefetch.distance,
              b.trials[i].params.prefetch.distance) << i;
    EXPECT_EQ(a.trials[i].strategy, b.trials[i].strategy) << i;
    EXPECT_EQ(a.trials[i].mflops, b.trials[i].mflops) << i;
    EXPECT_EQ(a.trials[i].reason, b.trials[i].reason) << i;
  }
  EXPECT_EQ(a.params.mr, b.params.mr);
  EXPECT_EQ(a.params.nr, b.params.nr);
  EXPECT_EQ(a.mflops, b.mflops);
}

TEST(Search, DifferentSeedsMayDivergeButBothFindWinners) {
  const Isa isa = host_arch().best_native_isa();
  const TuneResult a = tune_gemm(isa, quick_workload(), synthetic_opts(1));
  const TuneResult b = tune_gemm(isa, quick_workload(), synthetic_opts(2));
  EXPECT_GT(a.mflops, 0.0);
  EXPECT_GT(b.mflops, 0.0);
}

// Property (satellite 1, deterministic half): on the downsized grid with
// the synthetic (noise-free) cost model, the seeded climb must land on the
// exhaustive winner exactly — the model is monotone per axis, so steepest
// ascent provably reaches the grid maximum.
TEST(Search, SyntheticClimbFindsExhaustiveWinnerOnDownsizedGrid) {
  const Isa isa = host_arch().best_native_isa();
  const SearchSpace space = SearchSpace::gemm(isa, /*downsized=*/true);

  SearchOptions ex = synthetic_opts(5);
  ex.exhaustive = true;
  const TuneResult exhaustive =
      tune_space(KernelKind::kGemm, isa, space, quick_workload(), ex);

  SearchOptions hc = synthetic_opts(5);
  hc.max_trials = space.grid_size();  // let the climb run out of moves
  const TuneResult searched =
      tune_space(KernelKind::kGemm, isa, space, quick_workload(), hc);

  EXPECT_EQ(exhaustive.search.algorithm, "exhaustive");
  EXPECT_EQ(searched.search.algorithm, "hillclimb");
  EXPECT_LE(searched.trials.size(), exhaustive.trials.size());
  EXPECT_EQ(searched.params.mr, exhaustive.params.mr);
  EXPECT_EQ(searched.params.nr, exhaustive.params.nr);
  EXPECT_EQ(searched.params.ku, exhaustive.params.ku);
  EXPECT_EQ(searched.mflops, exhaustive.mflops);
}

// Property (satellite 1, measured half): with real timings under fixed
// repetitions (the AUGEM_BENCH_REPS mode), the seeded search's winner must
// be within the pooled confidence interval of the exhaustive winner on a
// downsized grid — i.e. the search gives up no statistically significant
// performance vs the full sweep.
TEST(Search, MeasuredWinnerWithinPooledCiOfExhaustive) {
  const Isa isa = host_arch().best_native_isa();
  const SearchSpace space = SearchSpace::level1(/*downsized=*/true);
  TuneWorkload w = quick_workload();

  SearchOptions ex;
  ex.seed = 11;
  ex.exhaustive = true;
  ex.fixed_reps = 3;
  const TuneResult exhaustive =
      tune_space(KernelKind::kDot, isa, space, w, ex);

  SearchOptions hc;
  hc.seed = 11;
  hc.fixed_reps = 3;
  hc.max_trials = space.grid_size();
  const TuneResult searched = tune_space(KernelKind::kDot, isa, space, w, hc);

  // Pooled 95% CI of the two winning medians.
  double ex_ci = 0.0, hc_ci = 0.0;
  for (const Trial& t : exhaustive.trials)
    if (t.feasible && t.mflops == exhaustive.mflops) ex_ci = t.ci_half;
  for (const Trial& t : searched.trials)
    if (t.feasible && t.mflops == searched.mflops) hc_ci = t.ci_half;
  const double pooled = std::sqrt(ex_ci * ex_ci + hc_ci * hc_ci);
  EXPECT_TRUE(searched.mflops >= exhaustive.mflops ||
              exhaustive.mflops - searched.mflops <= pooled)
      << "search winner " << searched.mflops << " ±" << hc_ci
      << " vs exhaustive " << exhaustive.mflops << " ±" << ex_ci;
}

TEST(Search, WallClockCapStopsSearch) {
  SearchOptions o = synthetic_opts(3);
  o.max_seconds = 1e-9;  // expires after the first trial
  const TuneResult r =
      tune_gemm(host_arch().best_native_isa(), quick_workload(), o);
  EXPECT_TRUE(r.search.wall_capped);
  EXPECT_LT(r.trials.size(), 4u);
}

TEST(Search, InfeasibleReasonClassification) {
  EXPECT_EQ(classify_infeasible("regalloc.cpp:53: check failed: ... — out of "
                                "vector registers (affinity 'acc')"),
            InfeasibleReason::kRegallocExhausted);
  EXPECT_EQ(classify_infeasible("plan.cpp:284: vector register budget "
                                "exceeded: 14 persistent registers"),
            InfeasibleReason::kPlannerRejected);
  EXPECT_EQ(classify_infeasible("plan.cpp:117: Shuf strategy requires an nxn "
                                "tile"),
            InfeasibleReason::kPlannerRejected);
  EXPECT_EQ(classify_infeasible("as: unknown mnemonic"),
            InfeasibleReason::kOther);

  // Round-trip of every reason through its wire name.
  for (InfeasibleReason r :
       {InfeasibleReason::kNone, InfeasibleReason::kPlannerRejected,
        InfeasibleReason::kRegallocExhausted, InfeasibleReason::kOther}) {
    InfeasibleReason parsed;
    ASSERT_TRUE(parse_infeasible_reason(infeasible_reason_name(r), parsed));
    EXPECT_EQ(parsed, r);
  }
  InfeasibleReason ignored;
  EXPECT_FALSE(parse_infeasible_reason("bogus", ignored));
}

// The GEMM space contains shuf points on non-square tiles; the planner
// rejects those, and the trial log must say so (not just "infeasible").
TEST(Search, PlannerRejectionsAreLoggedWithReason) {
  const TuneResult r = tune_gemm(host_arch().best_native_isa(),
                                 quick_workload(), synthetic_opts(7));
  bool planner_rejected = false;
  for (const Trial& t : r.trials) {
    if (t.feasible) EXPECT_EQ(t.reason, InfeasibleReason::kNone);
    planner_rejected |= t.reason == InfeasibleReason::kPlannerRejected;
  }
  EXPECT_TRUE(planner_rejected);
  // describe() distinguishes the stages.
  Trial t;
  t.feasible = false;
  t.reason = InfeasibleReason::kPlannerRejected;
  EXPECT_NE(t.describe().find("planner rejected"), std::string::npos);
  t.reason = InfeasibleReason::kRegallocExhausted;
  EXPECT_NE(t.describe().find("regalloc exhausted"), std::string::npos);
}

TEST(Search, OptionsFromEnv) {
  setenv("AUGEM_TUNE_SEED", "12345", 1);
  setenv("AUGEM_TUNE_TRIALS", "9", 1);
  setenv("AUGEM_TUNE_SECONDS", "2.5", 1);
  setenv("AUGEM_TUNE_SYNTHETIC", "1", 1);
  setenv("AUGEM_BENCH_REPS", "4", 1);
  const SearchOptions o = SearchOptions::from_env();
  unsetenv("AUGEM_TUNE_SEED");
  unsetenv("AUGEM_TUNE_TRIALS");
  unsetenv("AUGEM_TUNE_SECONDS");
  unsetenv("AUGEM_TUNE_SYNTHETIC");
  unsetenv("AUGEM_BENCH_REPS");
  EXPECT_EQ(o.seed, 12345u);
  EXPECT_TRUE(o.seed_from_env);
  EXPECT_EQ(o.max_trials, 9);
  EXPECT_DOUBLE_EQ(o.max_seconds, 2.5);
  EXPECT_TRUE(o.synthetic);
  EXPECT_EQ(o.fixed_reps, 4);

  const SearchOptions d = SearchOptions::from_env();
  EXPECT_FALSE(d.seed_from_env);
  EXPECT_FALSE(d.synthetic);
  EXPECT_EQ(d.max_trials, 0);
}

TEST(Search, SpaceAxesAndNeighbors) {
  const SearchSpace g = SearchSpace::gemm(Isa::kAvx);
  EXPECT_EQ(g.grid_size(), 240);
  const SearchSpace l = SearchSpace::level1();
  EXPECT_EQ(l.grid_size(), 35);

  // Neighbors are single-axis steps; the start cell has one neighbor per
  // in-range step.
  const Point start = l.start();
  for (const Point& n : l.neighbors(start)) {
    int changed = 0;
    for (std::size_t a = 0; a < n.ix.size(); ++a)
      changed += n.ix[a] != start.ix[a] ? 1 : 0;
    EXPECT_EQ(changed, 1);
  }
  // all_points covers the grid exactly once.
  std::set<std::string> keys;
  for (const Point& p : l.all_points()) keys.insert(l.key(p));
  EXPECT_EQ(static_cast<int>(keys.size()), l.grid_size());
  // Prefetch axis materializes both "off" and concrete distances.
  bool saw_off = false, saw_dist = false;
  for (const Point& p : l.all_points()) {
    const Candidate c = l.materialize(p);
    saw_off |= !c.params.prefetch.enabled;
    saw_dist |= c.params.prefetch.enabled && c.params.prefetch.distance == 64;
  }
  EXPECT_TRUE(saw_off);
  EXPECT_TRUE(saw_dist);
}

}  // namespace
}  // namespace augem::tuning
