#include "tuning/tuner.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "support/arch.hpp"

namespace augem::tuning {
namespace {

using frontend::KernelKind;

TuneWorkload quick_workload() {
  TuneWorkload w;
  w.mc = 64;
  w.nc = 32;
  w.kc = 64;
  w.vec_len = 2048;
  w.reps = 2;
  return w;
}

TEST(Tuner, GemmSearchFindsFeasibleWinner) {
  const TuneResult r = tune_gemm(host_arch().best_native_isa(), quick_workload());
  EXPECT_GT(r.mflops, 0.0);
  EXPECT_GE(r.params.mr, 1);
  EXPECT_GE(r.params.nr, 1);
  // The trial log records every candidate, feasible or not.
  EXPECT_GE(r.trials.size(), 8u);
  int feasible = 0;
  for (const Trial& t : r.trials) feasible += t.feasible ? 1 : 0;
  EXPECT_GT(feasible, 0);
  // The winner's score appears among the trials.
  bool winner_logged = false;
  for (const Trial& t : r.trials) winner_logged |= t.mflops == r.mflops;
  EXPECT_TRUE(winner_logged);
}

TEST(Tuner, GemmSearchIncludesShufCandidate) {
  const TuneResult r = tune_gemm(host_arch().best_native_isa(), quick_workload());
  bool has_shuf = false;
  for (const Trial& t : r.trials)
    has_shuf |= t.strategy == opt::VecStrategy::kShuf;
  EXPECT_TRUE(has_shuf);
}

TEST(Tuner, Level1SearchSweepsUnroll) {
  const TuneResult r =
      tune_level1(KernelKind::kDot, host_arch().best_native_isa(), quick_workload());
  EXPECT_GT(r.mflops, 0.0);
  EXPECT_EQ(r.trials.size(), 4u);
  EXPECT_EQ(r.kind, KernelKind::kDot);
}

TEST(Tuner, Level1RejectsGemm) {
  EXPECT_THROW(tune_level1(KernelKind::kGemm, Isa::kSse2, quick_workload()),
               Error);
}

TEST(Tuner, DriverSweepCoversThreadsAndBlockSizes) {
  // Cheap kernel + tiny workload: the point is the sweep structure, not
  // the timings.
  const blas::BlockKernel naive = [](blas::index_t mc, blas::index_t nc,
                                     blas::index_t kc, const double* pa,
                                     const double* pb, double* c,
                                     blas::index_t ldc) {
    for (blas::index_t j = 0; j < nc; ++j)
      for (blas::index_t i = 0; i < mc; ++i) {
        double acc = 0.0;
        for (blas::index_t l = 0; l < kc; ++l)
          acc += pa[l * mc + i] * pb[l * nc + j];
        blas::at(c, ldc, i, j) += acc;
      }
  };
  const blas::BlockSizes base{32, 64, 32};
  const DriverTuneResult r = tune_driver(naive, base, 64, 64, 64, 1);
  EXPECT_GT(r.mflops, 0.0);
  EXPECT_GE(r.threads, 1);
  // 4 block-size variants × every candidate thread count, all logged.
  ASSERT_FALSE(r.trials.empty());
  EXPECT_EQ(r.trials.size() % 4, 0u);
  bool has_serial = false, winner_logged = false;
  for (const DriverTrial& t : r.trials) {
    has_serial |= t.threads == 1;
    winner_logged |= t.mflops == r.mflops;
  }
  EXPECT_TRUE(has_serial);
  EXPECT_TRUE(winner_logged);
  // The winner round-trips into a usable context.
  const blas::GemmContext ctx = r.context();
  EXPECT_EQ(ctx.threads, r.threads);
  EXPECT_EQ(ctx.sizes.mc, r.sizes.mc);
  EXPECT_FALSE(r.report().empty());
}

TEST(Tuner, ReportMentionsEveryTrial) {
  const TuneResult r =
      tune_level1(KernelKind::kAxpy, host_arch().best_native_isa(), quick_workload());
  const std::string report = r.report();
  EXPECT_NE(report.find("best:"), std::string::npos);
  EXPECT_NE(report.find("axpy"), std::string::npos);
  EXPECT_NE(report.find("MFLOPS"), std::string::npos);
}

TEST(Tuner, SaveLoadRoundTrip) {
  const std::string path = "/tmp/augem_tuner_test_cache.txt";
  std::remove(path.c_str());

  TuneResult r = tune_level1(KernelKind::kAxpy, host_arch().best_native_isa(),
                             quick_workload());
  save_result(r, path);

  TuneResult loaded;
  ASSERT_TRUE(load_result(KernelKind::kAxpy, r.config.isa, path, loaded));
  EXPECT_EQ(loaded.params.unroll, r.params.unroll);
  EXPECT_EQ(loaded.config.isa, r.config.isa);

  // Wrong kind / ISA miss.
  TuneResult miss;
  EXPECT_FALSE(load_result(KernelKind::kDot, r.config.isa, path, miss));
  std::remove(path.c_str());
}

TEST(Tuner, LoadFromMissingFileFails) {
  TuneResult out;
  EXPECT_FALSE(load_result(KernelKind::kAxpy, Isa::kSse2,
                           "/tmp/does_not_exist_augem.txt", out));
}

}  // namespace
}  // namespace augem::tuning
