// The Table 6 routines (SYMM/SYRK/SYR2K/TRMM/TRSM/GER) as implemented by
// the default GEMM-casting algorithms in blas::Blas, checked against the
// reference implementations — across every library (the defaults call the
// library's own virtual gemm/axpy) and every operand variant
// (Side × Uplo × Trans).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "blas/libraries.hpp"
#include "blas/reference.hpp"
#include "support/rng.hpp"

namespace augem::blas {
namespace {

std::unique_ptr<Blas> make_library(const std::string& which) {
  if (which == "refblas") return make_refblas();
  if (which == "gotosim") return make_gotosim();
  if (which == "atlsim") return make_atlsim();
  return make_vendorsim();
}

constexpr Side kSides[] = {Side::kLeft, Side::kRight};
constexpr Uplo kUplos[] = {Uplo::kLower, Uplo::kUpper};
constexpr Trans kTranses[] = {Trans::kNo, Trans::kYes};

class Level3 : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Blas> lib_ = make_library(GetParam());
  Rng rng_{31};
};

TEST_P(Level3, GerMatchesReference) {
  const index_t m = 150, n = 70, lda = m + 1;
  std::vector<double> x(static_cast<std::size_t>(m)),
      y(static_cast<std::size_t>(n)), a(static_cast<std::size_t>(lda * n));
  rng_.fill(x);
  rng_.fill(y);
  rng_.fill(a);
  std::vector<double> a_ref = a;
  lib_->ger(m, n, 1.5, x.data(), y.data(), a.data(), lda);
  ref::ger(m, n, 1.5, x.data(), y.data(), a_ref.data(), lda);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_NEAR(a[i], a_ref[i], 1e-12);
}

TEST_P(Level3, SymmMatchesReference) {
  // m > kL3Block exercises off-diagonal, transposed and diagonal blocks.
  const index_t m = 150, n = 40;
  for (Side side : kSides) {
    for (Uplo uplo : kUplos) {
      const index_t ka = side == Side::kLeft ? m : n;
      std::vector<double> a(static_cast<std::size_t>(ka * ka)),
          b(static_cast<std::size_t>(m * n)), c(static_cast<std::size_t>(m * n));
      rng_.fill(a);
      rng_.fill(b);
      rng_.fill(c);
      std::vector<double> c_ref = c;
      lib_->symm(side, uplo, m, n, 1.25, a.data(), ka, b.data(), m, 0.5,
                 c.data(), m);
      ref::symm(side, uplo, m, n, 1.25, a.data(), ka, b.data(), m, 0.5,
                c_ref.data(), m);
      for (std::size_t i = 0; i < c.size(); ++i)
        ASSERT_NEAR(c[i], c_ref[i], 1e-10)
            << i << " side=" << static_cast<int>(side)
            << " uplo=" << static_cast<int>(uplo);
    }
  }
}

TEST_P(Level3, SyrkMatchesReferenceAndPreservesOppositeTriangle) {
  const index_t n = 150, k = 33;
  for (Uplo uplo : kUplos) {
    for (Trans trans : kTranses) {
      const index_t lda = trans == Trans::kNo ? n : k;
      std::vector<double> a(static_cast<std::size_t>(n * k)),
          c(static_cast<std::size_t>(n * n));
      rng_.fill(a);
      rng_.fill(c);
      std::vector<double> c_ref = c;
      lib_->syrk(uplo, trans, n, k, 2.0, a.data(), lda, 0.75, c.data(), n);
      ref::syrk(uplo, trans, n, k, 2.0, a.data(), lda, 0.75, c_ref.data(), n);
      for (index_t j = 0; j < n; ++j)
        for (index_t i = 0; i < n; ++i)
          ASSERT_NEAR(at(c.data(), n, i, j), at(c_ref.data(), n, i, j), 1e-10)
              << i << "," << j << " uplo=" << static_cast<int>(uplo)
              << " trans=" << static_cast<int>(trans);
    }
  }
}

TEST_P(Level3, Syr2kMatchesReference) {
  const index_t n = 140, k = 20;
  for (Uplo uplo : kUplos) {
    for (Trans trans : kTranses) {
      const index_t ld = trans == Trans::kNo ? n : k;
      std::vector<double> a(static_cast<std::size_t>(n * k)),
          b(static_cast<std::size_t>(n * k)), c(static_cast<std::size_t>(n * n));
      rng_.fill(a);
      rng_.fill(b);
      rng_.fill(c);
      std::vector<double> c_ref = c;
      lib_->syr2k(uplo, trans, n, k, 1.5, a.data(), ld, b.data(), ld, 0.25,
                  c.data(), n);
      ref::syr2k(uplo, trans, n, k, 1.5, a.data(), ld, b.data(), ld, 0.25,
                 c_ref.data(), n);
      for (std::size_t i = 0; i < c.size(); ++i)
        ASSERT_NEAR(c[i], c_ref[i], 1e-10)
            << i << " uplo=" << static_cast<int>(uplo)
            << " trans=" << static_cast<int>(trans);
    }
  }
}

TEST_P(Level3, TrmmMatchesReferenceAllVariants) {
  const index_t m = 150, n = 30;
  for (Side side : kSides) {
    for (Uplo uplo : kUplos) {
      for (Trans trans : kTranses) {
        const index_t ka = side == Side::kLeft ? m : n;
        std::vector<double> a(static_cast<std::size_t>(ka * ka)),
            b(static_cast<std::size_t>(m * n));
        rng_.fill(a);
        rng_.fill(b);
        std::vector<double> b_ref = b;
        lib_->trmm(side, uplo, trans, m, n, 1.25, a.data(), ka, b.data(), m);
        ref::trmm(side, uplo, trans, m, n, 1.25, a.data(), ka, b_ref.data(),
                  m);
        for (std::size_t i = 0; i < b.size(); ++i)
          ASSERT_NEAR(b[i], b_ref[i], 1e-9)
              << i << " side=" << static_cast<int>(side)
              << " uplo=" << static_cast<int>(uplo)
              << " trans=" << static_cast<int>(trans);
      }
    }
  }
}

TEST_P(Level3, TrsmMatchesReferenceAllVariants) {
  const index_t m = 150, n = 30;
  for (Side side : kSides) {
    for (Uplo uplo : kUplos) {
      for (Trans trans : kTranses) {
        const index_t ka = side == Side::kLeft ? m : n;
        std::vector<double> a(static_cast<std::size_t>(ka * ka)),
            b(static_cast<std::size_t>(m * n));
        rng_.fill(a);
        for (index_t i = 0; i < ka; ++i)
          at(a.data(), ka, i, i) = 3.0 + i % 5;  // well-posed
        rng_.fill(b);
        std::vector<double> b_ref = b;
        lib_->trsm(side, uplo, trans, m, n, 0.75, a.data(), ka, b.data(), m);
        ref::trsm(side, uplo, trans, m, n, 0.75, a.data(), ka, b_ref.data(),
                  m);
        for (std::size_t i = 0; i < b.size(); ++i)
          ASSERT_NEAR(b[i], b_ref[i], 1e-8)
              << i << " side=" << static_cast<int>(side)
              << " uplo=" << static_cast<int>(uplo)
              << " trans=" << static_cast<int>(trans);
      }
    }
  }
}

TEST_P(Level3, SmallSizesBelowOneBlock) {
  const index_t m = 9, n = 5;
  std::vector<double> l(static_cast<std::size_t>(m * m)),
      b(static_cast<std::size_t>(m * n));
  rng_.fill(l);
  for (index_t i = 0; i < m; ++i) at(l.data(), m, i, i) = 2.0;
  rng_.fill(b);
  std::vector<double> b_ref = b;
  lib_->trmm(Side::kLeft, Uplo::kLower, Trans::kNo, m, n, 1.0, l.data(), m,
             b.data(), m);
  ref::trmm(Side::kLeft, Uplo::kLower, Trans::kNo, m, n, 1.0, l.data(), m,
            b_ref.data(), m);
  for (std::size_t i = 0; i < b.size(); ++i) ASSERT_NEAR(b[i], b_ref[i], 1e-11);
}

TEST_P(Level3, TinyDecompositionBlockCrossesEveryBoundary) {
  // set_level3_block(8) forces multi-block decompositions at small sizes:
  // every diagonal/off-diagonal/partial-block path runs within one test.
  lib_->set_level3_block(8);
  const index_t m = 37, n = 21;
  for (Uplo uplo : kUplos) {
    std::vector<double> a(static_cast<std::size_t>(m * m)),
        b(static_cast<std::size_t>(m * n));
    rng_.fill(a);
    for (index_t i = 0; i < m; ++i) at(a.data(), m, i, i) = 2.5 + i % 3;
    rng_.fill(b);
    std::vector<double> b_ref = b;
    lib_->trsm(Side::kLeft, uplo, Trans::kYes, m, n, 1.5, a.data(), m,
               b.data(), m);
    ref::trsm(Side::kLeft, uplo, Trans::kYes, m, n, 1.5, a.data(), m,
              b_ref.data(), m);
    for (std::size_t i = 0; i < b.size(); ++i)
      ASSERT_NEAR(b[i], b_ref[i], 1e-9) << i;

    std::vector<double> c(static_cast<std::size_t>(m * m));
    rng_.fill(c);
    std::vector<double> c_ref = c;
    lib_->syrk(uplo, Trans::kYes, m, n, 1.25, b.data(), n, 0.5, c.data(), m);
    ref::syrk(uplo, Trans::kYes, m, n, 1.25, b.data(), n, 0.5, c_ref.data(),
              m);
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_NEAR(c[i], c_ref[i], 1e-9) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLibraries, Level3,
                         ::testing::Values("refblas", "vendorsim", "gotosim",
                                           "atlsim"));

}  // namespace
}  // namespace augem::blas
