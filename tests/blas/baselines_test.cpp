// Every comparator library must agree with the reference BLAS on randomized
// problems — parameterized across all libraries and the primitive routines.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "blas/libraries.hpp"
#include "blas/reference.hpp"
#include "support/rng.hpp"

namespace augem::blas {
namespace {

std::unique_ptr<Blas> make_library(const std::string& which) {
  if (which == "refblas") return make_refblas();
  if (which == "gotosim") return make_gotosim();
  if (which == "atlsim") return make_atlsim();
  return make_vendorsim();
}

class Baselines : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Blas> lib_ = make_library(GetParam());
};

TEST_P(Baselines, NameIsStable) { EXPECT_EQ(lib_->name(), GetParam()); }

TEST_P(Baselines, GemmMatchesReference) {
  Rng rng(21);
  for (auto [m, n, k] :
       {std::tuple<index_t, index_t, index_t>{64, 64, 64},
        {33, 17, 29},
        {1, 130, 7},
        {130, 1, 250},
        {5, 5, 512}}) {
    const index_t lda = m + 1, ldb = k + 2, ldc = m + 3;
    std::vector<double> a(static_cast<std::size_t>(lda * k));
    std::vector<double> b(static_cast<std::size_t>(ldb * n));
    std::vector<double> c(static_cast<std::size_t>(ldc * n));
    rng.fill(a);
    rng.fill(b);
    rng.fill(c);
    std::vector<double> c_ref = c;
    lib_->gemm(Trans::kNo, Trans::kNo, m, n, k, 1.25, a.data(), lda, b.data(),
               ldb, 0.5, c.data(), ldc);
    ref::gemm(Trans::kNo, Trans::kNo, m, n, k, 1.25, a.data(), lda, b.data(),
              ldb, 0.5, c_ref.data(), ldc);
    const double tol = 1e-11 * static_cast<double>(k);
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_NEAR(c[i], c_ref[i], tol) << GetParam() << " (" << m << "x" << n
                                       << "x" << k << ") at " << i;
  }
}

TEST_P(Baselines, GemmTransposedMatchesReference) {
  Rng rng(22);
  const index_t m = 40, n = 24, k = 32;
  std::vector<double> a(static_cast<std::size_t>((k + 1) * m));
  std::vector<double> b(static_cast<std::size_t>((n + 1) * k));
  std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
  rng.fill(a);
  rng.fill(b);
  std::vector<double> c_ref = c;
  lib_->gemm(Trans::kYes, Trans::kYes, m, n, k, 1.0, a.data(), k + 1, b.data(),
             n + 1, 0.0, c.data(), m);
  ref::gemm(Trans::kYes, Trans::kYes, m, n, k, 1.0, a.data(), k + 1, b.data(),
            n + 1, 0.0, c_ref.data(), m);
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_NEAR(c[i], c_ref[i], 1e-10) << i;
}

TEST_P(Baselines, GemvMatchesReference) {
  Rng rng(23);
  for (const index_t m : {1, 7, 64, 201}) {
    const index_t n = 33, lda = m + 2;
    std::vector<double> a(static_cast<std::size_t>(lda * n)), x(n), y(m);
    rng.fill(a);
    rng.fill(x);
    rng.fill(y);
    std::vector<double> y_ref = y;
    lib_->gemv(m, n, 1.5, a.data(), lda, x.data(), 0.25, y.data());
    ref::gemv(m, n, 1.5, a.data(), lda, x.data(), 0.25, y_ref.data());
    for (index_t i = 0; i < m; ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-11) << i;
  }
}

TEST_P(Baselines, AxpyDotMatchReference) {
  Rng rng(24);
  for (const index_t n : {0, 1, 3, 8, 100, 1001}) {
    std::vector<double> x(static_cast<std::size_t>(n)),
        y(static_cast<std::size_t>(n));
    rng.fill(x);
    rng.fill(y);
    std::vector<double> y_ref = y;
    lib_->axpy(n, -1.75, x.data(), y.data());
    ref::axpy(n, -1.75, x.data(), y_ref.data());
    for (index_t i = 0; i < n; ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-13);
    EXPECT_NEAR(lib_->dot(n, x.data(), y.data()),
                ref::dot(n, x.data(), y.data()),
                1e-12 * static_cast<double>(n ? n : 1));
  }
}

INSTANTIATE_TEST_SUITE_P(AllLibraries, Baselines,
                         ::testing::Values("refblas", "gotosim", "atlsim",
                                           "vendorsim"));

}  // namespace
}  // namespace augem::blas
