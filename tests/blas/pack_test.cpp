#include "blas/pack.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"

namespace augem::blas {
namespace {

TEST(Pack, ABlockColumnMajorNoTrans) {
  // A 4×3 (lda 5), pack the 2×2 block at (1, 1).
  std::vector<double> a(15);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<double>(i);
  std::vector<double> pa(4, -1.0);
  pack_a_block(Trans::kNo, a.data(), 5, 1, 1, 2, 2, 1.0, pa.data());
  // pa[l*mc + i] = A(1+i, 1+l) = a[(1+l)*5 + 1+i]
  EXPECT_DOUBLE_EQ(pa[0], a[6]);
  EXPECT_DOUBLE_EQ(pa[1], a[7]);
  EXPECT_DOUBLE_EQ(pa[2], a[11]);
  EXPECT_DOUBLE_EQ(pa[3], a[12]);
}

TEST(Pack, ABlockFoldsAlpha) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> pa(4);
  pack_a_block(Trans::kNo, a.data(), 2, 0, 0, 2, 2, 10.0, pa.data());
  EXPECT_DOUBLE_EQ(pa[0], 10);
  EXPECT_DOUBLE_EQ(pa[3], 40);
}

TEST(Pack, ABlockTransposeReadsRows) {
  // op(A) = A^T: packed (i, l) = A(l, i).
  std::vector<double> a = {1, 2, 3, 4};  // 2×2 col-major: A = [1 3; 2 4]
  std::vector<double> pa(4);
  pack_a_block(Trans::kYes, a.data(), 2, 0, 0, 2, 2, 1.0, pa.data());
  // op(A)(i,l) = A(l,i): pa[l*2+i] = a[i*2+l]
  EXPECT_DOUBLE_EQ(pa[0], 1);
  EXPECT_DOUBLE_EQ(pa[1], 3);
  EXPECT_DOUBLE_EQ(pa[2], 2);
  EXPECT_DOUBLE_EQ(pa[3], 4);
}

TEST(Pack, BBlockRowMajorLayout) {
  // B 3×4 (ldb 3); pack full 3×4: pb[l*nc + j] = B(l, j).
  std::vector<double> b(12);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<double>(i);
  std::vector<double> pb(12);
  pack_b_block(Trans::kNo, b.data(), 3, 0, 0, 3, 4, pb.data());
  for (index_t l = 0; l < 3; ++l)
    for (index_t j = 0; j < 4; ++j)
      EXPECT_DOUBLE_EQ(pb[static_cast<std::size_t>(l * 4 + j)],
                       at(b.data(), 3, l, j));
}

TEST(Pack, BBlockTranspose) {
  std::vector<double> b = {1, 2, 3, 4};  // 2×2: B = [1 3; 2 4]
  std::vector<double> pb(4);
  pack_b_block(Trans::kYes, b.data(), 2, 0, 0, 2, 2, pb.data());
  // pb[l*2+j] = B^T(l,j) = B(j,l)
  EXPECT_DOUBLE_EQ(pb[0], 1);
  EXPECT_DOUBLE_EQ(pb[1], 2);
  EXPECT_DOUBLE_EQ(pb[2], 3);
  EXPECT_DOUBLE_EQ(pb[3], 4);
}

TEST(Pack, SubBlockOffsets) {
  Rng rng(3);
  const index_t ldb = 7;
  std::vector<double> b(static_cast<std::size_t>(ldb * 9));
  rng.fill(b);
  std::vector<double> pb(6);
  pack_b_block(Trans::kNo, b.data(), ldb, 2, 3, 2, 3, pb.data());
  for (index_t l = 0; l < 2; ++l)
    for (index_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(pb[static_cast<std::size_t>(l * 3 + j)],
                       at(b.data(), ldb, 2 + l, 3 + j));
}

}  // namespace
}  // namespace augem::blas
