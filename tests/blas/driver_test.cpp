#include "blas/driver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "blas/reference.hpp"
#include "support/rng.hpp"

namespace augem::blas {
namespace {

/// Trivial block kernel: plain loops over the packed layouts.
void naive_block_kernel(index_t mc, index_t nc, index_t kc, const double* pa,
                        const double* pb, double* c, index_t ldc) {
  for (index_t j = 0; j < nc; ++j)
    for (index_t i = 0; i < mc; ++i) {
      double acc = 0.0;
      for (index_t l = 0; l < kc; ++l) acc += pa[l * mc + i] * pb[l * nc + j];
      at(c, ldc, i, j) += acc;
    }
}

void check_driver(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                  double alpha, double beta, const BlockSizes& sizes,
                  unsigned seed) {
  Rng rng(seed);
  const index_t lda = (ta == Trans::kNo ? m : k) + 2;
  const index_t ldb = (tb == Trans::kNo ? k : n) + 1;
  const index_t ldc = m + 3;
  std::vector<double> a(static_cast<std::size_t>(lda * (ta == Trans::kNo ? k : m)));
  std::vector<double> b(static_cast<std::size_t>(ldb * (tb == Trans::kNo ? n : k)));
  std::vector<double> c(static_cast<std::size_t>(ldc * n));
  rng.fill(a);
  rng.fill(b);
  rng.fill(c);
  std::vector<double> c_ref = c;

  blocked_gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
               c.data(), ldc, sizes, naive_block_kernel);
  ref::gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
            c_ref.data(), ldc);
  const double tol = 1e-11 * static_cast<double>(k > 0 ? k : 1);
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_NEAR(c[i], c_ref[i], tol) << i;
}

TEST(Driver, DefaultBlockSizesFitCaches) {
  const BlockSizes s = default_block_sizes(host_arch());
  EXPECT_GE(s.kc, 64);
  EXPECT_LE(s.kc * 8 * 8, host_arch().l1d_bytes);
  EXPECT_LE(s.mc * s.kc * 8, host_arch().l2_bytes);
  EXPECT_EQ(s.mc % 8, 0);
  EXPECT_EQ(s.kc % 8, 0);
  // nc scales with the LLC: the packed kc×nc B panel stays within (half
  // of) L3 unless the 240-column floor dominates on tiny caches.
  EXPECT_GE(s.nc, 240);
  EXPECT_EQ(s.nc % 8, 0);
  if (s.nc > 240)
    EXPECT_LE(s.nc * s.kc * 8, host_arch().l3_bytes / 2 + 8 * s.kc * 8);
}

TEST(Driver, DefaultBlockSizesNcTracksL3) {
  CpuArch small = sandy_bridge_arch();
  small.l3_bytes = 2 * 1024 * 1024;
  CpuArch big = sandy_bridge_arch();
  big.l3_bytes = 32 * 1024 * 1024;
  EXPECT_LT(default_block_sizes(small).nc, default_block_sizes(big).nc);
  EXPECT_LE(default_block_sizes(big).nc, 4096);
}

TEST(Driver, SingleBlockExact) {
  check_driver(Trans::kNo, Trans::kNo, 8, 8, 8, 1.0, 0.0, {16, 16, 16}, 1);
}

TEST(Driver, MultipleBlocksAllDirections) {
  check_driver(Trans::kNo, Trans::kNo, 37, 29, 41, 1.0, 1.0, {16, 8, 12}, 2);
}

TEST(Driver, AlphaFoldedInPacking) {
  check_driver(Trans::kNo, Trans::kNo, 9, 7, 5, -2.5, 1.0, {8, 8, 8}, 3);
}

TEST(Driver, BetaZeroOverwritesGarbage) {
  // beta=0 must clear C even if it contains NaN-free garbage.
  check_driver(Trans::kNo, Trans::kNo, 6, 6, 6, 1.0, 0.0, {4, 4, 4}, 4);
}

TEST(Driver, BetaScalesOnceAcrossKBlocks) {
  // k split across 3 blocks: beta applied exactly once.
  check_driver(Trans::kNo, Trans::kNo, 5, 5, 30, 1.0, 0.5, {8, 8, 10}, 5);
}

TEST(Driver, TransposedOperands) {
  check_driver(Trans::kYes, Trans::kNo, 13, 11, 17, 1.0, 1.0, {8, 8, 8}, 6);
  check_driver(Trans::kNo, Trans::kYes, 13, 11, 17, 1.0, 1.0, {8, 8, 8}, 7);
  check_driver(Trans::kYes, Trans::kYes, 13, 11, 17, 2.0, 0.0, {8, 8, 8}, 8);
}

TEST(Driver, DegenerateSizes) {
  check_driver(Trans::kNo, Trans::kNo, 0, 5, 5, 1.0, 1.0, {8, 8, 8}, 9);
  check_driver(Trans::kNo, Trans::kNo, 5, 5, 0, 1.0, 0.5, {8, 8, 8}, 10);
  check_driver(Trans::kNo, Trans::kNo, 1, 1, 1, 1.0, 1.0, {8, 8, 8}, 11);
}

TEST(Driver, AlphaZeroOnlyScalesC) {
  check_driver(Trans::kNo, Trans::kNo, 6, 6, 6, 0.0, 0.5, {8, 8, 8}, 12);
}

}  // namespace
}  // namespace augem::blas
