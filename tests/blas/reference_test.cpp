// The reference BLAS is everything else's oracle, so it gets direct tests
// against hand-computable cases and mathematical identities.

#include "blas/reference.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"

namespace augem::blas {
namespace {

TEST(Reference, Gemm2x2ByHand) {
  // A = [1 2; 3 4], B = [5 6; 7 8] (column-major), C = A*B.
  const std::vector<double> a = {1, 3, 2, 4};
  const std::vector<double> b = {5, 7, 6, 8};
  std::vector<double> c(4, 0.0);
  ref::gemm(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0, a.data(), 2, b.data(), 2,
            0.0, c.data(), 2);
  EXPECT_DOUBLE_EQ(c[0], 19);  // 1*5+2*7
  EXPECT_DOUBLE_EQ(c[1], 43);  // 3*5+4*7
  EXPECT_DOUBLE_EQ(c[2], 22);  // 1*6+2*8
  EXPECT_DOUBLE_EQ(c[3], 50);  // 3*6+4*8
}

TEST(Reference, GemmAlphaBeta) {
  const std::vector<double> a = {2};
  const std::vector<double> b = {3};
  std::vector<double> c = {10};
  ref::gemm(Trans::kNo, Trans::kNo, 1, 1, 1, 2.0, a.data(), 1, b.data(), 1,
            0.5, c.data(), 1);
  EXPECT_DOUBLE_EQ(c[0], 2.0 * 6 + 0.5 * 10);
}

TEST(Reference, GemmTransposeIdentity) {
  // (A*B)^T == B^T * A^T: check one element via the transposed call.
  Rng rng(5);
  std::vector<double> a(6), b(12);
  rng.fill(a);
  rng.fill(b);
  // A is 2×3 (lda 2), B is 3×4 (ldb 3).
  std::vector<double> c1(8, 0.0), c2(8, 0.0);
  ref::gemm(Trans::kNo, Trans::kNo, 2, 4, 3, 1.0, a.data(), 2, b.data(), 3,
            0.0, c1.data(), 2);
  // Same product using transposed inputs laid out transposed: A^T is 3×2
  // stored as a (with lda 2 → its transpose view uses Trans::kYes).
  ref::gemm(Trans::kYes, Trans::kYes, 4, 2, 3, 1.0, b.data(), 3, a.data(), 2,
            0.0, c2.data(), 4);
  // c2 = (A*B)^T: c1(i,j) == c2(j,i).
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 2; ++i)
      EXPECT_DOUBLE_EQ(at(c1.data(), 2, i, j), at(c2.data(), 4, j, i));
}

TEST(Reference, GemvMatchesGemm) {
  Rng rng(7);
  const index_t m = 9, n = 5, lda = 11;
  std::vector<double> a(static_cast<std::size_t>(lda * n)), x(n), y(m, 1.0);
  rng.fill(a);
  rng.fill(x);
  std::vector<double> y2 = y;
  ref::gemv(m, n, 2.0, a.data(), lda, x.data(), 3.0, y.data());
  ref::gemm(Trans::kNo, Trans::kNo, m, 1, n, 2.0, a.data(), lda, x.data(), n,
            3.0, y2.data(), m);
  for (index_t i = 0; i < m; ++i) EXPECT_NEAR(y[i], y2[i], 1e-12);
}

TEST(Reference, AxpyAndDot) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {10, 20, 30};
  ref::axpy(3, 2.0, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 12);
  EXPECT_DOUBLE_EQ(y[2], 36);
  EXPECT_DOUBLE_EQ(ref::dot(3, x.data(), x.data()), 14.0);
}

TEST(Reference, GerRankOne) {
  std::vector<double> x = {1, 2};
  std::vector<double> y = {3, 4};
  std::vector<double> a(4, 0.0);
  ref::ger(2, 2, 1.0, x.data(), y.data(), a.data(), 2);
  EXPECT_DOUBLE_EQ(at(a.data(), 2, 0, 0), 3);
  EXPECT_DOUBLE_EQ(at(a.data(), 2, 1, 0), 6);
  EXPECT_DOUBLE_EQ(at(a.data(), 2, 0, 1), 4);
  EXPECT_DOUBLE_EQ(at(a.data(), 2, 1, 1), 8);
}

TEST(Reference, SymmMatchesExpandedGemm) {
  Rng rng(9);
  const index_t m = 7, n = 4;
  std::vector<double> a(static_cast<std::size_t>(m * m));
  std::vector<double> b(static_cast<std::size_t>(m * n));
  std::vector<double> c(static_cast<std::size_t>(m * n), 0.5);
  rng.fill(a);
  rng.fill(b);
  std::vector<double> c2 = c;
  ref::symm(Side::kLeft, Uplo::kLower, m, n, 1.5, a.data(), m, b.data(), m, 0.25, c.data(), m);
  // Expand the lower triangle symmetrically, then plain GEMM.
  std::vector<double> full(static_cast<std::size_t>(m * m));
  for (index_t j = 0; j < m; ++j)
    for (index_t i = 0; i < m; ++i)
      at(full.data(), m, i, j) = i >= j ? at(a.data(), m, i, j)
                                        : at(a.data(), m, j, i);
  ref::gemm(Trans::kNo, Trans::kNo, m, n, m, 1.5, full.data(), m, b.data(), m,
            0.25, c2.data(), m);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], c2[i], 1e-12);
}

TEST(Reference, SyrkOnlyTouchesLowerTriangle) {
  Rng rng(11);
  const index_t n = 6, k = 3;
  std::vector<double> a(static_cast<std::size_t>(n * k));
  rng.fill(a);
  std::vector<double> c(static_cast<std::size_t>(n * n), 99.0);
  ref::syrk(Uplo::kLower, Trans::kNo, n, k, 1.0, a.data(), n, 0.0, c.data(), n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      if (i < j) {
        EXPECT_DOUBLE_EQ(at(c.data(), n, i, j), 99.0);
      } else {
        double acc = 0;
        for (index_t l = 0; l < k; ++l)
          acc += at(a.data(), n, i, l) * at(a.data(), n, j, l);
        EXPECT_NEAR(at(c.data(), n, i, j), acc, 1e-12);
      }
    }
}

TEST(Reference, Syr2kSymmetrizedProduct) {
  Rng rng(13);
  const index_t n = 5, k = 4;
  std::vector<double> a(static_cast<std::size_t>(n * k)),
      b(static_cast<std::size_t>(n * k));
  rng.fill(a);
  rng.fill(b);
  std::vector<double> c(static_cast<std::size_t>(n * n), 0.0);
  ref::syr2k(Uplo::kLower, Trans::kNo, n, k, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n);
  // Diagonal entries equal 2*dot(a_i, b_i).
  for (index_t i = 0; i < n; ++i) {
    double acc = 0;
    for (index_t l = 0; l < k; ++l)
      acc += 2.0 * at(a.data(), n, i, l) * at(b.data(), n, i, l);
    EXPECT_NEAR(at(c.data(), n, i, i), acc, 1e-12);
  }
}

TEST(Reference, TrsmInvertsTrmm) {
  Rng rng(15);
  const index_t m = 8, n = 3;
  std::vector<double> l(static_cast<std::size_t>(m * m));
  rng.fill(l);
  for (index_t i = 0; i < m; ++i) at(l.data(), m, i, i) = 2.0 + i;  // well-posed
  std::vector<double> b(static_cast<std::size_t>(m * n));
  rng.fill(b);
  std::vector<double> orig = b;
  ref::trmm(Side::kLeft, Uplo::kLower, Trans::kNo, m, n, 1.0, l.data(), m,
            b.data(), m);  // B = L*B
  ref::trsm(Side::kLeft, Uplo::kLower, Trans::kNo, m, n, 1.0, l.data(), m,
            b.data(), m);  // B = L^{-1}*B
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(b[i], orig[i], 1e-10);
}

}  // namespace
}  // namespace augem::blas
