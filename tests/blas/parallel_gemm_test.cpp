#include "blas/driver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "support/rng.hpp"
#include "support/threadpool.hpp"

namespace augem::blas {
namespace {

/// Trivial block kernel: plain loops over the packed layouts. Every element
/// is an ordered dot product, so any driver decomposition that preserves
/// the k-block order reproduces it bit for bit.
void naive_block_kernel(index_t mc, index_t nc, index_t kc, const double* pa,
                        const double* pb, double* c, index_t ldc) {
  for (index_t j = 0; j < nc; ++j)
    for (index_t i = 0; i < mc; ++i) {
      double acc = 0.0;
      for (index_t l = 0; l < kc; ++l) acc += pa[l * mc + i] * pb[l * nc + j];
      at(c, ldc, i, j) += acc;
    }
}

/// A deliberately asymmetric tile kernel in the style of the shipped ones:
/// 4-column main tiles accumulate through fused multiply-adds, the edge
/// columns through separate mul+add — *different rounding*. If a jr split
/// ever lands off the tile grid, columns migrate between the two paths and
/// the bit-exactness checks below catch it.
void fma_tile_kernel(index_t mc, index_t nc, index_t kc, const double* pa,
                     const double* pb, double* c, index_t ldc) {
  const index_t n_main = nc / 4 * 4;
  for (index_t j = 0; j < n_main; j += 4) {
    for (index_t i = 0; i < mc; ++i) {
      double r0 = 0, r1 = 0, r2 = 0, r3 = 0;
      for (index_t l = 0; l < kc; ++l) {
        const double av = pa[l * mc + i];
        r0 = std::fma(av, pb[l * nc + j], r0);
        r1 = std::fma(av, pb[l * nc + j + 1], r1);
        r2 = std::fma(av, pb[l * nc + j + 2], r2);
        r3 = std::fma(av, pb[l * nc + j + 3], r3);
      }
      at(c, ldc, i, j) += r0;
      at(c, ldc, i, j + 1) += r1;
      at(c, ldc, i, j + 2) += r2;
      at(c, ldc, i, j + 3) += r3;
    }
  }
  for (index_t j = n_main; j < nc; ++j)
    for (index_t i = 0; i < mc; ++i) {
      double acc = 0.0;
      for (index_t l = 0; l < kc; ++l) acc += pa[l * mc + i] * pb[l * nc + j];
      at(c, ldc, i, j) += acc;
    }
}

void check_bit_identical(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                         double alpha, double beta, const BlockSizes& sizes,
                         int threads, const BlockKernel& kernel,
                         unsigned seed) {
  Rng rng(seed);
  const index_t lda = (ta == Trans::kNo ? m : k) + 2;
  const index_t ldb = (tb == Trans::kNo ? k : n) + 1;
  const index_t ldc = m + 3;
  std::vector<double> a(static_cast<std::size_t>(lda * (ta == Trans::kNo ? k : m)));
  std::vector<double> b(static_cast<std::size_t>(ldb * (tb == Trans::kNo ? n : k)));
  std::vector<double> c(static_cast<std::size_t>(ldc * n));
  rng.fill(a);
  rng.fill(b);
  rng.fill(c);
  std::vector<double> c_serial = c;
  std::vector<double> c_parallel = c;

  blocked_gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
               c_serial.data(), ldc, serial_gemm_context(sizes), kernel);

  ThreadPool pool(threads);
  GemmContext ctx;
  ctx.sizes = sizes;
  ctx.threads = threads;
  ctx.pool = &pool;
  blocked_gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
               c_parallel.data(), ldc, ctx, kernel);

  ASSERT_EQ(std::memcmp(c_serial.data(), c_parallel.data(),
                        c.size() * sizeof(double)),
            0)
      << "m=" << m << " n=" << n << " k=" << k << " threads=" << threads
      << " beta=" << beta;
}

TEST(ParallelGemm, RaggedTailsAllBetas) {
  // m/n/k deliberately not multiples of mc/nc/kc.
  for (int threads : {2, 3, 4})
    for (double beta : {0.0, 0.5, 1.0})
      check_bit_identical(Trans::kNo, Trans::kNo, 37, 29, 41, 1.0, beta,
                          {16, 8, 12}, threads, naive_block_kernel, 101);
}

TEST(ParallelGemm, ManyBlocksMoreThreadsThanBlocks) {
  // 2 ic blocks, 5 threads: exercises both the round-robin ic partition and
  // the jr sub-split fallback.
  check_bit_identical(Trans::kNo, Trans::kNo, 24, 64, 32, 1.0, 1.0,
                      {16, 16, 16}, 5, naive_block_kernel, 102);
}

TEST(ParallelGemm, TallSkinnyUsesJrSplit) {
  // One ic block (m <= mc): all parallelism must come from the jr chunks.
  check_bit_identical(Trans::kNo, Trans::kNo, 8, 123, 40, 2.0, 0.5,
                      {32, 48, 16}, 4, naive_block_kernel, 103);
}

TEST(ParallelGemm, DegenerateShapes) {
  check_bit_identical(Trans::kNo, Trans::kNo, 1, 17, 9, 1.0, 1.0, {8, 8, 8},
                      4, naive_block_kernel, 104);
  check_bit_identical(Trans::kNo, Trans::kNo, 17, 1, 9, 1.0, 0.0, {8, 8, 8},
                      4, naive_block_kernel, 105);
  check_bit_identical(Trans::kNo, Trans::kNo, 1, 1, 1, -1.5, 1.0, {8, 8, 8},
                      3, naive_block_kernel, 106);
  // k=0: only the (parallelized) beta sweep runs.
  check_bit_identical(Trans::kNo, Trans::kNo, 13, 11, 0, 1.0, 0.5, {8, 8, 8},
                      4, naive_block_kernel, 107);
  // alpha=0 with k>0: likewise no kernel invocations.
  check_bit_identical(Trans::kNo, Trans::kNo, 13, 11, 7, 0.0, 0.5, {8, 8, 8},
                      4, naive_block_kernel, 108);
}

TEST(ParallelGemm, TransposedOperands) {
  for (auto [ta, tb] : {std::pair{Trans::kYes, Trans::kNo},
                        {Trans::kNo, Trans::kYes},
                        {Trans::kYes, Trans::kYes}})
    check_bit_identical(ta, tb, 33, 27, 19, 1.0, 1.0, {16, 16, 8}, 4,
                        naive_block_kernel, 109);
}

TEST(ParallelGemm, FmaTileKernelSurvivesJrSplit) {
  // The rounding-asymmetric kernel: bit equality holds only if jr chunk
  // boundaries stay on the granule (tile) grid.
  check_bit_identical(Trans::kNo, Trans::kNo, 16, 133, 24, 1.0, 1.0,
                      {16, 64, 12}, 6, fma_tile_kernel, 110);
  check_bit_identical(Trans::kNo, Trans::kNo, 30, 67, 31, -0.5, 0.0,
                      {8, 40, 16}, 4, fma_tile_kernel, 111);
}

TEST(ParallelGemm, BetaZeroOverwritesNanGarbage) {
  // beta = 0 must overwrite, not scale: NaNs in C may not leak through
  // either driver, and both must produce identical bits.
  const index_t m = 11, n = 9, k = 6, ld = m;
  Rng rng(112);
  std::vector<double> a(static_cast<std::size_t>(m * k));
  std::vector<double> b(static_cast<std::size_t>(k * n));
  rng.fill(a);
  rng.fill(b);
  std::vector<double> c_serial(static_cast<std::size_t>(ld * n),
                               std::numeric_limits<double>::quiet_NaN());
  std::vector<double> c_parallel = c_serial;

  blocked_gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0, a.data(), m, b.data(), k,
               0.0, c_serial.data(), ld, serial_gemm_context({8, 8, 8}),
               naive_block_kernel);
  ThreadPool pool(4);
  GemmContext ctx;
  ctx.sizes = {8, 8, 8};
  ctx.threads = 4;
  ctx.pool = &pool;
  blocked_gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0, a.data(), m, b.data(), k,
               0.0, c_parallel.data(), ld, ctx, naive_block_kernel);

  for (std::size_t i = 0; i < c_serial.size(); ++i) {
    EXPECT_FALSE(std::isnan(c_serial[i])) << i;
    EXPECT_EQ(c_serial[i], c_parallel[i]) << i;
  }
}

TEST(ParallelGemm, ContextClampsToPoolSize) {
  // A context asking for more threads than the pool has must still be
  // correct (and one asking for fewer must leave the extra workers idle).
  ThreadPool pool(2);
  GemmContext ctx;
  ctx.sizes = {16, 16, 16};
  ctx.threads = 8;
  ctx.pool = &pool;
  Rng rng(113);
  const index_t m = 45, n = 37, k = 22;
  std::vector<double> a(static_cast<std::size_t>(m * k));
  std::vector<double> b(static_cast<std::size_t>(k * n));
  std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
  rng.fill(a);
  rng.fill(b);
  std::vector<double> c_ref = c;
  blocked_gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0, a.data(), m, b.data(), k,
               0.0, c.data(), m, ctx, naive_block_kernel);
  blocked_gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0, a.data(), m, b.data(), k,
               0.0, c_ref.data(), m, serial_gemm_context(ctx.sizes),
               naive_block_kernel);
  ASSERT_EQ(std::memcmp(c.data(), c_ref.data(), c.size() * sizeof(double)), 0);

  ThreadPool big_pool(4);
  ctx.pool = &big_pool;
  ctx.threads = 2;  // fewer than the pool: tids 2..3 idle through barriers
  std::vector<double> c2(static_cast<std::size_t>(m * n), 0.0);
  blocked_gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0, a.data(), m, b.data(), k,
               0.0, c2.data(), m, ctx, naive_block_kernel);
  ASSERT_EQ(std::memcmp(c2.data(), c_ref.data(), c2.size() * sizeof(double)),
            0);
}

}  // namespace
}  // namespace augem::blas
