// The first-class Level-3 casting engine (blas/level3.hpp): every routine ×
// variant against the scalar reference, bit-identity between the serial and
// threaded contexts (the decomposition is fixed at pack time), and the
// measured packed-panel reuse the engine exists for — SYRK's diagonal and
// off-diagonal updates must consume the same chunks, TRSM's trailing
// updates must re-read every solved block without repacking it.

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "blas/level3.hpp"
#include "blas/reference.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace augem::blas {
namespace {

constexpr Side kSides[] = {Side::kLeft, Side::kRight};
constexpr Uplo kUplos[] = {Uplo::kLower, Uplo::kUpper};
constexpr Trans kTranses[] = {Trans::kNo, Trans::kYes};

void naive_block(index_t mc, index_t nc, index_t kc, const double* pa,
                 const double* pb, double* c, index_t ldc) {
  for (index_t j = 0; j < nc; ++j)
    for (index_t i = 0; i < mc; ++i) {
      double acc = 0.0;
      for (index_t l = 0; l < kc; ++l) acc += pa[l * mc + i] * pb[l * nc + j];
      at(c, ldc, i, j) += acc;
    }
}

// Small blocks so modest test sizes cross every mc/kc/jw/NB boundary.
BlockSizes tiny_sizes() {
  BlockSizes s;
  s.mc = 8;
  s.nc = 64;
  s.kc = 6;
  return s;
}

class Level3Engine : public ::testing::TestWithParam<bool> {
 protected:
  Level3Config config(Level3Stats* stats = nullptr) const {
    Level3Config cfg;
    cfg.ctx = GetParam() ? threaded_gemm_context(tiny_sizes())
                         : serial_gemm_context(tiny_sizes());
    cfg.kernel = naive_block;
    cfg.block = 16;
    cfg.stats = stats;
    return cfg;
  }
  Rng rng_{77};
};

TEST_P(Level3Engine, SymmAllVariants) {
  const index_t m = 53, n = 29;
  for (Side side : kSides) {
    for (Uplo uplo : kUplos) {
      const index_t ka = side == Side::kLeft ? m : n;
      std::vector<double> a(static_cast<std::size_t>(ka * ka)),
          b(static_cast<std::size_t>(m * n)), c(static_cast<std::size_t>(m * n));
      rng_.fill(a);
      rng_.fill(b);
      rng_.fill(c);
      std::vector<double> c_ref = c;
      level3_symm(config(), side, uplo, m, n, 1.25, a.data(), ka, b.data(), m,
                  -0.5, c.data(), m);
      ref::symm(side, uplo, m, n, 1.25, a.data(), ka, b.data(), m, -0.5,
                c_ref.data(), m);
      for (std::size_t i = 0; i < c.size(); ++i)
        ASSERT_NEAR(c[i], c_ref[i], 1e-10)
            << i << " side=" << static_cast<int>(side)
            << " uplo=" << static_cast<int>(uplo);
    }
  }
}

TEST_P(Level3Engine, SyrkAllVariantsOnlyStoredTriangleTouched) {
  const index_t n = 45, k = 19;
  for (Uplo uplo : kUplos) {
    for (Trans trans : kTranses) {
      const index_t lda = trans == Trans::kNo ? n : k;
      std::vector<double> a(static_cast<std::size_t>(n * k)),
          c(static_cast<std::size_t>(n * n));
      rng_.fill(a);
      rng_.fill(c);
      std::vector<double> c_ref = c;
      level3_syrk(config(), uplo, trans, n, k, 2.0, a.data(), lda, 0.75,
                  c.data(), n);
      ref::syrk(uplo, trans, n, k, 2.0, a.data(), lda, 0.75, c_ref.data(), n);
      for (index_t j = 0; j < n; ++j)
        for (index_t i = 0; i < n; ++i) {
          const bool stored = uplo == Uplo::kLower ? i >= j : i <= j;
          if (stored)
            ASSERT_NEAR(at(c.data(), n, i, j), at(c_ref.data(), n, i, j),
                        1e-10)
                << i << "," << j;
          else  // opposite triangle is out of the routine's footprint
            ASSERT_EQ(at(c.data(), n, i, j), at(c_ref.data(), n, i, j))
                << i << "," << j;
        }
    }
  }
}

TEST_P(Level3Engine, Syr2kAllVariants) {
  const index_t n = 40, k = 23;
  for (Uplo uplo : kUplos) {
    for (Trans trans : kTranses) {
      const index_t ld = trans == Trans::kNo ? n : k;
      std::vector<double> a(static_cast<std::size_t>(n * k)),
          b(static_cast<std::size_t>(n * k)), c(static_cast<std::size_t>(n * n));
      rng_.fill(a);
      rng_.fill(b);
      rng_.fill(c);
      std::vector<double> c_ref = c;
      level3_syr2k(config(), uplo, trans, n, k, 1.5, a.data(), ld, b.data(),
                   ld, 0.25, c.data(), n);
      ref::syr2k(uplo, trans, n, k, 1.5, a.data(), ld, b.data(), ld, 0.25,
                 c_ref.data(), n);
      for (std::size_t i = 0; i < c.size(); ++i)
        ASSERT_NEAR(c[i], c_ref[i], 1e-10) << i;
    }
  }
}

TEST_P(Level3Engine, TrmmAllVariants) {
  const index_t m = 53, n = 26;
  for (Side side : kSides) {
    for (Uplo uplo : kUplos) {
      for (Trans trans : kTranses) {
        const index_t ka = side == Side::kLeft ? m : n;
        std::vector<double> a(static_cast<std::size_t>(ka * ka)),
            b(static_cast<std::size_t>(m * n));
        rng_.fill(a);
        rng_.fill(b);
        std::vector<double> b_ref = b;
        level3_trmm(config(), side, uplo, trans, m, n, 1.25, a.data(), ka,
                    b.data(), m);
        ref::trmm(side, uplo, trans, m, n, 1.25, a.data(), ka, b_ref.data(),
                  m);
        for (std::size_t i = 0; i < b.size(); ++i)
          ASSERT_NEAR(b[i], b_ref[i], 1e-9)
              << i << " side=" << static_cast<int>(side)
              << " uplo=" << static_cast<int>(uplo)
              << " trans=" << static_cast<int>(trans);
      }
    }
  }
}

TEST_P(Level3Engine, TrsmAllVariants) {
  const index_t m = 53, n = 26;
  for (Side side : kSides) {
    for (Uplo uplo : kUplos) {
      for (Trans trans : kTranses) {
        const index_t ka = side == Side::kLeft ? m : n;
        std::vector<double> a(static_cast<std::size_t>(ka * ka)),
            b(static_cast<std::size_t>(m * n));
        rng_.fill(a);
        for (index_t i = 0; i < ka; ++i)
          at(a.data(), ka, i, i) = 3.0 + i % 5;
        rng_.fill(b);
        std::vector<double> b_ref = b;
        level3_trsm(config(), side, uplo, trans, m, n, 0.75, a.data(), ka,
                    b.data(), m);
        ref::trsm(side, uplo, trans, m, n, 0.75, a.data(), ka, b_ref.data(),
                  m);
        for (std::size_t i = 0; i < b.size(); ++i)
          ASSERT_NEAR(b[i], b_ref[i], 1e-8)
              << i << " side=" << static_cast<int>(side)
              << " uplo=" << static_cast<int>(uplo)
              << " trans=" << static_cast<int>(trans);
      }
    }
  }
}

TEST_P(Level3Engine, TrsmRejectsNonFinitePivot) {
  const index_t m = 20, n = 7;
  std::vector<double> a(static_cast<std::size_t>(m * m)),
      b(static_cast<std::size_t>(m * n));
  rng_.fill(a);
  for (index_t i = 0; i < m; ++i) at(a.data(), m, i, i) = 2.0;
  at(a.data(), m, 17, 17) = std::numeric_limits<double>::quiet_NaN();
  rng_.fill(b);
  try {
    level3_trsm(config(), Side::kLeft, Uplo::kLower, Trans::kNo, m, n, 1.0,
                a.data(), m, b.data(), m);
    FAIL() << "NaN pivot must throw";
  } catch (const augem::Error& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite or zero pivot"),
              std::string::npos)
        << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(SerialAndThreaded, Level3Engine,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "threaded" : "serial";
                         });

// ---- serial ≡ threaded bit-identity ---------------------------------------

TEST(Level3EngineIdentity, SerialAndThreadedAreBitIdentical) {
  Rng rng(91);
  const index_t m = 61, n = 33;
  std::vector<double> sa(static_cast<std::size_t>(m * m)),
      b0(static_cast<std::size_t>(m * n)), c0(static_cast<std::size_t>(m * n)),
      d0(static_cast<std::size_t>(n * n));
  rng.fill(sa);
  for (index_t i = 0; i < m; ++i) at(sa.data(), m, i, i) = 4.0 + i % 3;
  rng.fill(b0);
  rng.fill(c0);
  rng.fill(d0);

  Level3Config serial;
  serial.ctx = serial_gemm_context(tiny_sizes());
  serial.kernel = naive_block;
  serial.block = 16;
  Level3Config threaded = serial;
  threaded.ctx = threaded_gemm_context(tiny_sizes());

  const auto run_all = [&](const Level3Config& cfg, std::vector<double>& c,
                           std::vector<double>& b, std::vector<double>& d) {
    level3_symm(cfg, Side::kLeft, Uplo::kUpper, m, n, 1.5, sa.data(), m,
                b.data(), m, 0.5, c.data(), m);
    level3_syrk(cfg, Uplo::kLower, Trans::kNo, m, n, 1.25, b.data(), m, 0.5,
                c.data(), m);
    level3_syr2k(cfg, Uplo::kUpper, Trans::kYes, n, m, 0.75, b.data(), m,
                 c.data(), m, 1.0, d.data(), n);
    level3_trmm(cfg, Side::kLeft, Uplo::kLower, Trans::kYes, m, n, 1.25,
                sa.data(), m, b.data(), m);
    level3_trsm(cfg, Side::kLeft, Uplo::kLower, Trans::kNo, m, n, 1.0,
                sa.data(), m, b.data(), m);
  };

  std::vector<double> cs = c0, bs = b0, ds = d0, ct = c0, bt = b0, dt = d0;
  run_all(serial, cs, bs, ds);
  run_all(threaded, ct, bt, dt);
  ASSERT_EQ(0, std::memcmp(cs.data(), ct.data(), cs.size() * sizeof(double)));
  ASSERT_EQ(0, std::memcmp(bs.data(), bt.data(), bs.size() * sizeof(double)));
  ASSERT_EQ(0, std::memcmp(ds.data(), dt.data(), ds.size() * sizeof(double)));
}

// ---- measured packed-panel reuse ------------------------------------------

TEST(Level3EngineStats, SyrkSharesPanelBetweenDiagonalAndOffDiagonal) {
  Rng rng(17);
  const index_t n = 48, k = 20;  // three 16-wide column blocks
  std::vector<double> a(static_cast<std::size_t>(n * k)),
      c(static_cast<std::size_t>(n * n), 0.0);
  rng.fill(a);
  Level3Stats stats;
  Level3Config cfg;
  cfg.ctx = serial_gemm_context(tiny_sizes());
  cfg.kernel = naive_block;
  cfg.block = 16;
  cfg.stats = &stats;
  level3_syrk(cfg, Uplo::kLower, Trans::kNo, n, k, 1.0, a.data(), n, 0.0,
              c.data(), n);
  EXPECT_GT(stats.panels_packed, 0);
  // Each column block's chunks feed its diagonal temporary AND the
  // off-diagonal rows below it — strictly more consumptions than packs.
  EXPECT_GT(stats.panel_reuses, 0);
}

TEST(Level3EngineStats, TrsmTrailingUpdatesReuseSolvedPanels) {
  Rng rng(18);
  const index_t m = 48, n = 24;  // three 16-row solve blocks
  std::vector<double> a(static_cast<std::size_t>(m * m)),
      b(static_cast<std::size_t>(m * n));
  rng.fill(a);
  for (index_t i = 0; i < m; ++i) at(a.data(), m, i, i) = 3.0;
  rng.fill(b);
  Level3Stats stats;
  Level3Config cfg;
  cfg.ctx = serial_gemm_context(tiny_sizes());
  cfg.kernel = naive_block;
  cfg.block = 16;
  cfg.stats = &stats;
  level3_trsm(cfg, Side::kLeft, Uplo::kLower, Trans::kNo, m, n, 1.0, a.data(),
              m, b.data(), m);
  EXPECT_GT(stats.panels_packed, 0);
  // Block 0's solved chunks are consumed by the trailing updates of blocks
  // 1 and 2 (and across multiple mc sub-blocks) without being repacked.
  EXPECT_GT(stats.panel_reuses, 0);
}

TEST(Level3EngineStats, SymmPacksEachPanelChunkExactlyOnce) {
  Rng rng(19);
  const index_t m = 48, n = 24;
  std::vector<double> a(static_cast<std::size_t>(m * m)),
      b(static_cast<std::size_t>(m * n)), c(static_cast<std::size_t>(m * n));
  rng.fill(a);
  rng.fill(b);
  rng.fill(c);
  Level3Stats stats;
  Level3Config cfg;
  cfg.ctx = serial_gemm_context(tiny_sizes());
  cfg.kernel = naive_block;
  cfg.block = 16;
  cfg.stats = &stats;
  level3_symm(cfg, Side::kLeft, Uplo::kLower, m, n, 1.0, a.data(), m, b.data(),
              m, 0.0, c.data(), m);
  // B is k×n = 48×24 at kc=6 → 8 k-chunks; every chunk packs exactly once
  // and is consumed by all six mc row blocks (m/mc = 48/8).
  const std::int64_t jchunks =
      (n + default_jr_width(n, cfg.ctx.jr_granule) - 1) /
      default_jr_width(n, cfg.ctx.jr_granule);
  EXPECT_EQ(stats.panels_packed, 8 * jchunks);
  EXPECT_EQ(stats.panel_reuses, 8 * jchunks * (48 / 8 - 1));
}

}  // namespace
}  // namespace augem::blas
