// Regression tests for three Level-3 casting bugs (see docs/correctness.md):
//
//   * alpha == 0 in SYMM/SYRK/SYR2K used to run the full decomposition and
//     read A/B — netlib reduces the call to the beta update with the matrix
//     operands unread. Poisoned operands must not leak NaN into C.
//   * Degenerate extents used to blow up before the quick return: TRMM
//     computed `(m - 1) / NB` block counts at m == 0 and sized scratch from
//     a negative n. All five routines must be exact no-ops for m/n <= 0.
//   * TRSM's singularity check was `piv != 0.0`, which a NaN pivot passes
//     (NaN != 0.0 is true) — the solve then silently filled B with NaN.
//     Non-finite pivots must throw like zero pivots do.
//
// Each case runs against every library (the casting lives in the shared
// base class) and the scalar reference.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "blas/libraries.hpp"
#include "blas/reference.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace augem::blas {
namespace {

const double kNaN = std::numeric_limits<double>::quiet_NaN();

std::unique_ptr<Blas> make_library(const std::string& which) {
  if (which == "refblas") return make_refblas();
  if (which == "gotosim") return make_gotosim();
  if (which == "atlsim") return make_atlsim();
  return make_vendorsim();
}

class Level3Semantics : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Blas> lib_ = make_library(GetParam());
  Rng rng_{404};
};

// ---- alpha == 0 never reads the matrix operands ---------------------------

TEST_P(Level3Semantics, SymmAlphaZeroIsBetaUpdateOnly) {
  const index_t m = 10, n = 6;
  std::vector<double> a(static_cast<std::size_t>(m * m), kNaN),
      b(static_cast<std::size_t>(m * n), kNaN),
      c(static_cast<std::size_t>(m * n));
  rng_.fill(c);
  const std::vector<double> c0 = c;
  lib_->symm(Side::kLeft, Uplo::kLower, m, n, 0.0, a.data(), m, b.data(), m,
             -2.0, c.data(), m);
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_DOUBLE_EQ(c[i], -2.0 * c0[i]) << GetParam() << " C[" << i << "]";
}

TEST_P(Level3Semantics, SyrkAlphaZeroAndKZeroAreBetaUpdateOnly) {
  const index_t n = 9;
  std::vector<double> a(static_cast<std::size_t>(n * 4), kNaN),
      c(static_cast<std::size_t>(n * n));
  rng_.fill(c);
  std::vector<double> c0 = c;
  lib_->syrk(Uplo::kUpper, Trans::kNo, n, 4, 0.0, a.data(), n, 0.5, c.data(),
             n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const double want = i <= j ? 0.5 * at(c0.data(), n, i, j)
                                 : at(c0.data(), n, i, j);
      ASSERT_DOUBLE_EQ(at(c.data(), n, i, j), want)
          << GetParam() << " " << i << "," << j;
    }
  // k == 0: same reduction (and the opposite triangle stays untouched).
  c = c0;
  lib_->syrk(Uplo::kLower, Trans::kYes, n, 0, 3.0, a.data(), 1, 2.0, c.data(),
             n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const double want = i >= j ? 2.0 * at(c0.data(), n, i, j)
                                 : at(c0.data(), n, i, j);
      ASSERT_DOUBLE_EQ(at(c.data(), n, i, j), want)
          << GetParam() << " k0 " << i << "," << j;
    }
}

TEST_P(Level3Semantics, Syr2kAlphaZeroIsBetaUpdateOnly) {
  const index_t n = 8, k = 3;
  std::vector<double> a(static_cast<std::size_t>(n * k), kNaN),
      b(static_cast<std::size_t>(n * k), kNaN),
      c(static_cast<std::size_t>(n * n));
  rng_.fill(c);
  const std::vector<double> c0 = c;
  lib_->syr2k(Uplo::kLower, Trans::kNo, n, k, 0.0, a.data(), n, b.data(), n,
              1.5, c.data(), n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const double want = i >= j ? 1.5 * at(c0.data(), n, i, j)
                                 : at(c0.data(), n, i, j);
      ASSERT_DOUBLE_EQ(at(c.data(), n, i, j), want)
          << GetParam() << " " << i << "," << j;
    }
}

TEST_P(Level3Semantics, SyrkBetaZeroOverwritesNaNInStoredTriangle) {
  const index_t n = 7, k = 4;
  std::vector<double> a(static_cast<std::size_t>(n * k)),
      c(static_cast<std::size_t>(n * n), kNaN);
  rng_.fill(a);
  std::vector<double> want(static_cast<std::size_t>(n * n), kNaN);
  lib_->syrk(Uplo::kLower, Trans::kNo, n, k, 1.0, a.data(), n, 0.0, c.data(),
             n);
  ref::syrk(Uplo::kLower, Trans::kNo, n, k, 1.0, a.data(), n, 0.0, want.data(),
            n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) {
      ASSERT_TRUE(std::isfinite(at(c.data(), n, i, j)))
          << GetParam() << " " << i << "," << j;
      ASSERT_NEAR(at(c.data(), n, i, j), at(want.data(), n, i, j), 1e-11)
          << GetParam();
    }
}

// ---- degenerate extents are exact no-ops ----------------------------------

TEST_P(Level3Semantics, DegenerateExtentsAreNoOps) {
  // Null operand pointers prove nothing is dereferenced; before the quick
  // returns were added, trmm(m=0) underflowed its block count and negative
  // n sized scratch allocations from a negative extent.
  for (const index_t m : {index_t{0}, index_t{-1}}) {
    lib_->symm(Side::kLeft, Uplo::kLower, m, 5, 1.0, nullptr, 1, nullptr, 1,
               2.0, nullptr, 1);
    lib_->trmm(Side::kLeft, Uplo::kLower, Trans::kNo, m, 5, 1.0, nullptr, 1,
               nullptr, 1);
    lib_->trsm(Side::kLeft, Uplo::kUpper, Trans::kYes, m, 5, 1.0, nullptr, 1,
               nullptr, 1);
  }
  for (const index_t n : {index_t{0}, index_t{-3}}) {
    lib_->symm(Side::kRight, Uplo::kUpper, 4, n, 1.0, nullptr, 1, nullptr, 1,
               0.0, nullptr, 1);
    lib_->syrk(Uplo::kLower, Trans::kNo, n, 4, 1.0, nullptr, 1, 0.5, nullptr,
               1);
    lib_->syr2k(Uplo::kUpper, Trans::kYes, n, 4, 1.0, nullptr, 1, nullptr, 1,
                0.5, nullptr, 1);
    lib_->trmm(Side::kRight, Uplo::kUpper, Trans::kYes, 4, n, 1.0, nullptr, 1,
               nullptr, 1);
    lib_->trsm(Side::kRight, Uplo::kLower, Trans::kNo, 4, n, 1.0, nullptr, 1,
               nullptr, 1);
  }
  SUCCEED();  // reaching here without a crash/throw is the assertion
}

TEST_P(Level3Semantics, TrmmTrsmAlphaZeroZeroesBWithoutReadingA) {
  const index_t m = 11, n = 4;
  std::vector<double> a(static_cast<std::size_t>(m * m), kNaN),
      b(static_cast<std::size_t>(m * n), kNaN);
  lib_->trmm(Side::kLeft, Uplo::kLower, Trans::kNo, m, n, 0.0, a.data(), m,
             b.data(), m);
  for (double v : b) ASSERT_EQ(v, 0.0) << GetParam();
  std::fill(b.begin(), b.end(), kNaN);
  lib_->trsm(Side::kLeft, Uplo::kLower, Trans::kNo, m, n, 0.0, a.data(), m,
             b.data(), m);
  for (double v : b) ASSERT_EQ(v, 0.0) << GetParam();
}

// ---- TRSM singularity: non-finite pivots must not pass `piv != 0` ---------

TEST_P(Level3Semantics, TrsmRejectsNaNPivot) {
  const index_t m = 6, n = 3;
  std::vector<double> a(static_cast<std::size_t>(m * m)),
      b(static_cast<std::size_t>(m * n));
  rng_.fill(a);
  for (index_t i = 0; i < m; ++i) at(a.data(), m, i, i) = 2.0;
  at(a.data(), m, 4, 4) = kNaN;
  rng_.fill(b);
  try {
    lib_->trsm(Side::kLeft, Uplo::kLower, Trans::kNo, m, n, 1.0, a.data(), m,
               b.data(), m);
    FAIL() << GetParam() << ": NaN pivot accepted";
  } catch (const augem::Error& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite or zero pivot"),
              std::string::npos)
        << GetParam() << ": " << e.what();
  }
}

TEST_P(Level3Semantics, TrsmStillRejectsZeroPivot) {
  const index_t m = 5, n = 2;
  std::vector<double> a(static_cast<std::size_t>(m * m)),
      b(static_cast<std::size_t>(m * n));
  rng_.fill(a);
  for (index_t i = 0; i < m; ++i) at(a.data(), m, i, i) = 1.0;
  at(a.data(), m, 2, 2) = 0.0;
  rng_.fill(b);
  EXPECT_THROW(lib_->trsm(Side::kRight, Uplo::kUpper, Trans::kNo, n, m, 1.0,
                          a.data(), m, b.data(), n),
               augem::Error)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllLibraries, Level3Semantics,
                         ::testing::Values("refblas", "gotosim", "atlsim",
                                           "vendorsim"),
                         [](const auto& info) { return info.param; });

// The scalar reference obeys the same contracts (it is the fuzz oracle).
TEST(Level3SemanticsRef, ReferenceAlphaZeroAndPivots) {
  const index_t n = 6, k = 3;
  std::vector<double> a(static_cast<std::size_t>(n * k), kNaN),
      c(static_cast<std::size_t>(n * n));
  Rng rng(405);
  rng.fill(c);
  const std::vector<double> c0 = c;
  ref::syrk(Uplo::kLower, Trans::kNo, n, k, 0.0, a.data(), n, 1.0, c.data(),
            n);
  EXPECT_EQ(c, c0);  // beta == 1, alpha == 0: bitwise no-op

  std::vector<double> t(static_cast<std::size_t>(n * n));
  rng.fill(t);
  for (index_t i = 0; i < n; ++i) at(t.data(), n, i, i) = kNaN;
  std::vector<double> b(static_cast<std::size_t>(n * 2), 1.0);
  EXPECT_THROW(ref::trsm(Side::kLeft, Uplo::kLower, Trans::kNo, n, 2, 1.0,
                         t.data(), n, b.data(), n),
               augem::Error);
  ref::trmm(Side::kRight, Uplo::kUpper, Trans::kNo, 0, -2, 1.0, nullptr, 1,
            nullptr, 1);  // degenerate extents: no-op
}

}  // namespace
}  // namespace augem::blas
