// Regression tests for the netlib BLAS edge-case semantics that the
// differential harness (src/check) enforces across every implementation:
//
//   * beta == 0 *overwrites* the output — NaN/Inf in an uninitialized y/C
//     must never survive a beta-0 call (`y[i] *= 0` would keep them);
//   * alpha == 0 (and GEMM's k == 0) reduces the call to the beta update
//     without ever reading A/B/x — poisoned inputs must not leak through;
//   * scal(0, x) clears x (same overwrite policy);
//   * axpy(0, x, y) leaves y bit-identical, even against NaN x.
//
// Each case was a real divergence between implementations before the
// beta_scale unification (see docs/correctness.md).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "blas/driver.hpp"
#include "blas/libraries.hpp"
#include "blas/reference.hpp"
#include "support/rng.hpp"

namespace augem::blas {
namespace {

const double kNaN = std::numeric_limits<double>::quiet_NaN();
const double kInf = std::numeric_limits<double>::infinity();

std::unique_ptr<Blas> make_library(const std::string& which) {
  if (which == "refblas") return make_refblas();
  if (which == "gotosim") return make_gotosim();
  if (which == "atlsim") return make_atlsim();
  return make_vendorsim();
}

class SemanticsEdge : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Blas> lib_ = make_library(GetParam());
  Rng rng_{2026};
};

TEST_P(SemanticsEdge, GemvBetaZeroOverwritesNaN) {
  const index_t m = 13, n = 7;
  std::vector<double> a(static_cast<std::size_t>(m * n)),
      x(static_cast<std::size_t>(n));
  rng_.fill(a);
  rng_.fill(x);
  std::vector<double> y(static_cast<std::size_t>(m), kNaN);
  y[3] = kInf;
  lib_->gemv(m, n, 1.0, a.data(), m, x.data(), 0.0, y.data());
  std::vector<double> want(static_cast<std::size_t>(m), 0.0);
  ref::gemv(m, n, 1.0, a.data(), m, x.data(), 0.0, want.data());
  for (index_t i = 0; i < m; ++i) {
    ASSERT_TRUE(std::isfinite(y[i])) << GetParam() << " y[" << i << "]";
    ASSERT_NEAR(y[i], want[i], 1e-12 * static_cast<double>(n)) << GetParam();
  }
}

TEST_P(SemanticsEdge, GemvAlphaZeroNeverReadsAOrX) {
  const index_t m = 9, n = 5;
  std::vector<double> a(static_cast<std::size_t>(m * n), kNaN),
      x(static_cast<std::size_t>(n), kNaN), y(static_cast<std::size_t>(m));
  rng_.fill(y);
  const std::vector<double> y0 = y;
  lib_->gemv(m, n, 0.0, a.data(), m, x.data(), 2.0, y.data());
  for (index_t i = 0; i < m; ++i)
    ASSERT_DOUBLE_EQ(y[i], 2.0 * y0[static_cast<std::size_t>(i)])
        << GetParam() << " y[" << i << "]";
}

TEST_P(SemanticsEdge, GemmBetaZeroOverwritesNaN) {
  const index_t m = 17, n = 11, k = 6;
  std::vector<double> a(static_cast<std::size_t>(m * k)),
      b(static_cast<std::size_t>(k * n));
  rng_.fill(a);
  rng_.fill(b);
  std::vector<double> c(static_cast<std::size_t>(m * n), kNaN);
  std::vector<double> want(static_cast<std::size_t>(m * n), 0.0);
  lib_->gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0, a.data(), m, b.data(), k,
             0.0, c.data(), m);
  ref::gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0, a.data(), m, b.data(), k,
            0.0, want.data(), m);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_TRUE(std::isfinite(c[i])) << GetParam() << " C[" << i << "]";
    ASSERT_NEAR(c[i], want[i], 1e-11 * static_cast<double>(k)) << GetParam();
  }
}

TEST_P(SemanticsEdge, GemmKZeroIsBetaUpdateOnly) {
  // k == 0: no product term exists; C = beta*C exactly, A/B never read.
  const index_t m = 8, n = 6;
  std::vector<double> a(1, kNaN), b(1, kNaN), c(static_cast<std::size_t>(m * n));
  rng_.fill(c);
  const std::vector<double> c0 = c;
  lib_->gemm(Trans::kNo, Trans::kNo, m, n, 0, 1.0, a.data(), 1, b.data(), 1,
             -0.5, c.data(), m);
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_DOUBLE_EQ(c[i], -0.5 * c0[i]) << GetParam() << " C[" << i << "]";
}

TEST_P(SemanticsEdge, BatchStridedAlphaZeroNeverReadsAOrB) {
  // Regression: the reference batch loop accumulated the k-sum before
  // multiplying by alpha, so alpha == 0 with an Inf/NaN operand produced
  // 0 * Inf = NaN where netlib semantics (and the amortized fast path)
  // reduce the call to the beta update. Found by fuzz --seed 7 --case 2649.
  const index_t m = 5, n = 3, k = 2, batch = 2;
  const index_t stride_a = m * k, stride_b = k * n, stride_c = m * n;
  std::vector<double> a(static_cast<std::size_t>(stride_a * batch), kInf),
      b(static_cast<std::size_t>(stride_b * batch), kNaN),
      c(static_cast<std::size_t>(stride_c * batch));
  rng_.fill(c);
  const std::vector<double> c0 = c;
  lib_->gemm_batch_strided(m, n, k, 0.0, a.data(), m, stride_a, b.data(), k,
                           stride_b, -2.0, c.data(), m, stride_c, batch,
                           nullptr, 0, false);
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_DOUBLE_EQ(c[i], -2.0 * c0[i]) << GetParam() << " C[" << i << "]";
}

TEST_P(SemanticsEdge, ScalZeroClearsNaN) {
  std::vector<double> x = {kNaN, kInf, -kInf, 3.0, kNaN};
  lib_->scal(static_cast<index_t>(x.size()), 0.0, x.data());
  for (double v : x) ASSERT_EQ(v, 0.0) << GetParam();
}

TEST_P(SemanticsEdge, AxpyAlphaZeroLeavesYUntouched) {
  const index_t n = 11;
  std::vector<double> x(static_cast<std::size_t>(n), kNaN),
      y(static_cast<std::size_t>(n));
  rng_.fill(y);
  const std::vector<double> y0 = y;
  lib_->axpy(n, 0.0, x.data(), y.data());
  EXPECT_EQ(y, y0) << GetParam();
}

TEST_P(SemanticsEdge, GemvTBetaZeroOverwritesNaN) {
  const index_t m = 10, n = 4;
  std::vector<double> a(static_cast<std::size_t>(m * n)),
      x(static_cast<std::size_t>(m));
  rng_.fill(a);
  rng_.fill(x);
  std::vector<double> y(static_cast<std::size_t>(n), kNaN);
  std::vector<double> want(static_cast<std::size_t>(n), 0.0);
  lib_->gemv_t(m, n, -1.0, a.data(), m, x.data(), 0.0, y.data());
  ref::gemv_t(m, n, -1.0, a.data(), m, x.data(), 0.0, want.data());
  for (index_t j = 0; j < n; ++j) {
    ASSERT_TRUE(std::isfinite(y[j])) << GetParam() << " y[" << j << "]";
    ASSERT_NEAR(y[j], want[j], 1e-12 * static_cast<double>(m)) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllLibraries, SemanticsEdge,
                         ::testing::Values("refblas", "gotosim", "atlsim",
                                           "vendorsim"),
                         [](const auto& info) { return info.param; });

// ---- the blocked driver itself (both threading modes) ----------------------

class DriverSemantics : public ::testing::TestWithParam<bool> {
 protected:
  GemmContext context() const {
    BlockSizes sizes;
    sizes.mc = 8;
    sizes.nc = 16;
    sizes.kc = 6;
    return GetParam() ? threaded_gemm_context(sizes)
                      : serial_gemm_context(sizes);
  }
  static void naive_block(index_t mc, index_t nc, index_t kc, const double* pa,
                          const double* pb, double* c, index_t ldc) {
    for (index_t j = 0; j < nc; ++j)
      for (index_t i = 0; i < mc; ++i) {
        double acc = 0.0;
        for (index_t l = 0; l < kc; ++l) acc += pa[l * mc + i] * pb[l * nc + j];
        at(c, ldc, i, j) += acc;
      }
  }
  Rng rng_{2027};
};

TEST_P(DriverSemantics, BetaZeroOverwritesNaN) {
  const index_t m = 21, n = 19, k = 13;
  std::vector<double> a(static_cast<std::size_t>(m * k)),
      b(static_cast<std::size_t>(k * n));
  rng_.fill(a);
  rng_.fill(b);
  std::vector<double> c(static_cast<std::size_t>(m * n), kNaN);
  std::vector<double> want(static_cast<std::size_t>(m * n), 0.0);
  blocked_gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0, a.data(), m, b.data(), k,
               0.0, c.data(), m, context(), naive_block);
  ref::gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0, a.data(), m, b.data(), k,
            0.0, want.data(), m);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_TRUE(std::isfinite(c[i])) << "C[" << i << "]";
    ASSERT_NEAR(c[i], want[i], 1e-11 * static_cast<double>(k));
  }
}

TEST_P(DriverSemantics, KZeroAndAlphaZeroAreBetaUpdateOnly) {
  const index_t m = 7, n = 5;
  std::vector<double> a(1, kNaN), b(1, kNaN), c(static_cast<std::size_t>(m * n));
  rng_.fill(c);
  const std::vector<double> c0 = c;
  blocked_gemm(Trans::kNo, Trans::kNo, m, n, 0, 1.0, a.data(), 1, b.data(), 1,
               3.0, c.data(), m, context(), naive_block);
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_DOUBLE_EQ(c[i], 3.0 * c0[i]) << "k=0 C[" << i << "]";

  // alpha == 0 with k > 0: same — A/B must never be packed.
  std::vector<double> c2 = c0;
  blocked_gemm(Trans::kNo, Trans::kNo, m, n, 4, 0.0, a.data(), 1, b.data(), 1,
               0.0, c2.data(), m, context(), naive_block);
  for (std::size_t i = 0; i < c2.size(); ++i)
    ASSERT_EQ(c2[i], 0.0) << "alpha=0 C[" << i << "]";
}

INSTANTIATE_TEST_SUITE_P(SerialAndThreaded, DriverSemantics,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "threaded" : "serial";
                         });

}  // namespace
}  // namespace augem::blas
