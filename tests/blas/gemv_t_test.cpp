// Transposed GEMV: the default implementation casts each output element
// onto one Level-1 DOT (paper §4: "most Level-2 routines invoke optimized
// Level-1 kernels") — checked for every library against the reference.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "blas/libraries.hpp"
#include "blas/reference.hpp"
#include "support/rng.hpp"

namespace augem::blas {
namespace {

std::unique_ptr<Blas> make_library(const std::string& which) {
  if (which == "refblas") return make_refblas();
  if (which == "gotosim") return make_gotosim();
  if (which == "atlsim") return make_atlsim();
  return make_vendorsim();
}

class GemvT : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Blas> lib_ = make_library(GetParam());
  Rng rng_{51};
};

TEST_P(GemvT, MatchesReference) {
  for (auto [m, n] : {std::pair<index_t, index_t>{64, 32},
                            {1, 17},
                            {200, 1},
                            {33, 77}}) {
    const index_t lda = m + 2;
    std::vector<double> a(static_cast<std::size_t>(lda * n)),
        x(static_cast<std::size_t>(m)), y(static_cast<std::size_t>(n));
    rng_.fill(a);
    rng_.fill(x);
    rng_.fill(y);
    std::vector<double> y_ref = y;
    lib_->gemv_t(m, n, 1.5, a.data(), lda, x.data(), -0.5, y.data());
    ref::gemv_t(m, n, 1.5, a.data(), lda, x.data(), -0.5, y_ref.data());
    for (index_t j = 0; j < n; ++j)
      ASSERT_NEAR(y[j], y_ref[j], 1e-11 * static_cast<double>(m))
          << GetParam() << " " << m << "x" << n << " at " << j;
  }
}

TEST_P(GemvT, TransposeIdentityAgainstGemv) {
  // y1 = A^T x computed by gemv_t must equal y2 from an explicit transpose.
  const index_t m = 48, n = 20;
  std::vector<double> a(static_cast<std::size_t>(m * n)),
      atr(static_cast<std::size_t>(n * m)), x(static_cast<std::size_t>(m));
  rng_.fill(a);
  rng_.fill(x);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      at(atr.data(), n, j, i) = at(a.data(), m, i, j);
  std::vector<double> y1(static_cast<std::size_t>(n), 0.0), y2 = y1;
  lib_->gemv_t(m, n, 1.0, a.data(), m, x.data(), 0.0, y1.data());
  lib_->gemv(n, m, 1.0, atr.data(), n, x.data(), 0.0, y2.data());
  for (index_t j = 0; j < n; ++j) ASSERT_NEAR(y1[j], y2[j], 1e-11);
}

INSTANTIATE_TEST_SUITE_P(AllLibraries, GemvT,
                         ::testing::Values("refblas", "gotosim", "atlsim",
                                           "vendorsim"));

}  // namespace
}  // namespace augem::blas
