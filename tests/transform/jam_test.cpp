#include <gtest/gtest.h>

#include "frontend/kernels.hpp"
#include "ir/visit.hpp"
#include "support/error.hpp"
#include "transform/unroll.hpp"
#include "../common/oracle.hpp"

namespace augem::transform {
namespace {

using namespace augem::ir;
using frontend::BLayout;

int count_loops(const StmtList& body) {
  int n = 0;
  for_each_stmt(body, [&](const Stmt& s) {
    if (s.kind() == StmtKind::kFor) ++n;
  });
  return n;
}

const ForStmt* find_loop(const StmtList& body, const std::string& v) {
  const ForStmt* found = nullptr;
  for_each_stmt(body, [&](const Stmt& s) {
    if (const auto* f = as<ForStmt>(s)) {
      if (f->var() == v && found == nullptr) found = f;
    }
  });
  return found;
}

TEST(UnrollAndJam, GemmTwoByTwoProducesSingleInnerLoop) {
  Kernel k = frontend::make_gemm_kernel();
  unroll_and_jam(k, "j", 2, true);
  unroll_and_jam(k, "i", 2, true);
  // Still exactly three loops: j, i, l — the copies were fused (Fig. 13).
  EXPECT_EQ(count_loops(k.body()), 3);

  // The innermost loop carries all mr*nr = 4 multiply-accumulate statements.
  const ForStmt* l = find_loop(k.body(), "l");
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->body().size(), 4u);

  // Four distinct accumulators (res expanded like res0…res3 in the paper).
  const ForStmt* i = find_loop(k.body(), "i");
  ASSERT_NE(i, nullptr);
  int inits = 0, stores = 0;
  for (const StmtPtr& s : i->body()) {
    const auto* a = as<Assign>(*s);
    if (a == nullptr) continue;
    if (a->rhs().kind() == ExprKind::kFloatConst) ++inits;
    if (a->lhs().kind() == ExprKind::kArrayRef) ++stores;
  }
  EXPECT_EQ(inits, 4);
  EXPECT_EQ(stores, 4);
}

TEST(UnrollAndJam, AccumulatorsAreRenamedApart) {
  Kernel k = frontend::make_gemm_kernel();
  unroll_and_jam(k, "j", 2, true);
  // Two accumulators now exist: the original `res` plus a renamed sibling.
  int res_like = 0;
  for (const auto& local : k.locals())
    if (local.name.rfind("res", 0) == 0) ++res_like;
  EXPECT_EQ(res_like, 2);
}

TEST(UnrollAndJam, StepBecomesFactor) {
  Kernel k = frontend::make_gemm_kernel();
  unroll_and_jam(k, "j", 4, true);
  const ForStmt* j = find_loop(k.body(), "j");
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(j->step(), 4);
  EXPECT_EQ(j->upper().to_string(), "nc");
}

TEST(UnrollAndJam, RequiresDivisibleContract) {
  Kernel k = frontend::make_gemm_kernel();
  EXPECT_THROW(unroll_and_jam(k, "j", 2, /*assume_divisible=*/false),
               augem::Error);
}

TEST(UnrollAndJam, FactorOneIsNoop) {
  Kernel k = frontend::make_gemm_kernel();
  Kernel orig = k.clone();
  unroll_and_jam(k, "j", 1, true);
  EXPECT_TRUE(stmts_equal(k.body(), orig.body()));
}

TEST(UnrollAndJam, RejectsUnsafeFusion) {
  // for (j...) { s = B[j]; for (l...) { B[l] = s; } }
  // Hoisting copy 1's `s1 = B[j+1]` above copy 0's loop crosses a loop that
  // writes B — must be rejected.
  Kernel k("bad", {{"n", ScalarType::kI64}, {"B", ScalarType::kPtrF64, false}});
  k.declare_local("j", ScalarType::kI64);
  k.declare_local("l", ScalarType::kI64);
  k.declare_local("s", ScalarType::kF64);
  StmtList inner;
  inner.push_back(assign(arr("B", var("l")), var("s")));
  StmtList outer;
  outer.push_back(assign(var("s"), arr("B", var("j"))));
  outer.push_back(forloop("l", ival(0), var("n"), 1, std::move(inner)));
  StmtList body;
  body.push_back(forloop("j", ival(0), var("n"), 1, std::move(outer)));
  k.set_body(std::move(body));
  EXPECT_THROW(unroll_and_jam(k, "j", 2, true), augem::Error);
}

class JamSemantics
    : public ::testing::TestWithParam<std::tuple<int, int, BLayout>> {};

TEST_P(JamSemantics, GemmMatchesReference) {
  const auto [nr, mr, layout] = GetParam();
  Kernel k = frontend::make_gemm_kernel(layout);
  unroll_and_jam(k, "j", nr, true);
  unroll_and_jam(k, "i", mr, true);
  // mc/nc divisible by the tile as the driver guarantees; ldc > mc.
  augem::testing::check_gemm_kernel_semantics(k, layout, 4 * mr, 2 * nr,
                                              /*kc=*/7, /*ldc=*/4 * mr + 3);
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, JamSemantics,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(BLayout::kRowPanel,
                                         BLayout::kColMajor)));

TEST(UnrollAndJam, ComposesWithInnerUnroll) {
  Kernel k = frontend::make_gemm_kernel();
  unroll_and_jam(k, "j", 2, true);
  unroll_and_jam(k, "i", 2, true);
  unroll(k, "l", 2);
  // 2x2 tile, l unrolled by 2 with remainder: l body has 8 statements.
  const ForStmt* l = find_loop(k.body(), "l");
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->body().size(), 8u);
  augem::testing::check_gemm_kernel_semantics(k, BLayout::kRowPanel, 4, 4, 5, 4);
}

}  // namespace
}  // namespace augem::transform
