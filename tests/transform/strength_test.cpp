#include "transform/strength.hpp"

#include <gtest/gtest.h>

#include <set>

#include "frontend/kernels.hpp"
#include "ir/visit.hpp"
#include "transform/unroll.hpp"
#include "../common/oracle.hpp"

namespace augem::transform {
namespace {

using namespace augem::ir;
using frontend::BLayout;

/// After strength reduction every array reference inside a loop must be
/// cursor[integer-constant].
void expect_all_refs_are_cursor_const(const Kernel& k) {
  for_each_stmt(k.body(), [&](const Stmt& s) {
    if (s.kind() != StmtKind::kFor) return;
    const auto& f = *as<ForStmt>(s);
    for_each_expr(f.body(), [&](const Expr& e) {
      if (const auto* ref = as<ArrayRef>(e))
        EXPECT_EQ(ref->index().kind(), ExprKind::kIntConst)
            << "non-reduced reference: " << ref->to_string();
    });
  });
}

int count_ptr_locals(const Kernel& k) {
  int n = 0;
  for (const auto& l : k.locals())
    if (l.type == ScalarType::kPtrF64) ++n;
  return n;
}

TEST(StrengthReduce, GemmIntroducesPaperCursors) {
  Kernel k = frontend::make_gemm_kernel();
  unroll_and_jam(k, "j", 2, true);
  unroll_and_jam(k, "i", 2, true);
  strength_reduce(k);
  expect_all_refs_are_cursor_const(k);
  // ptr_A, ptr_B (inner loop) + ptr_C0, ptr_C1 (i loop) = 4, as in Fig. 13.
  EXPECT_EQ(count_ptr_locals(k), 4);
}

TEST(StrengthReduce, ColMajorLayoutAlsoGetsFourCursors) {
  Kernel k = frontend::make_gemm_kernel(BLayout::kColMajor);
  unroll_and_jam(k, "j", 2, true);
  unroll_and_jam(k, "i", 2, true);
  strength_reduce(k);
  expect_all_refs_are_cursor_const(k);
  // ptr_A + two ptr_B cursors (B[j*kc+l] and B[(j+1)*kc+l] differ by the
  // symbolic constant kc) + two ptr_C cursors = 5.
  EXPECT_EQ(count_ptr_locals(k), 5);
}

TEST(StrengthReduce, CursorOffsetsSpanTheTile) {
  Kernel k = frontend::make_gemm_kernel();
  unroll_and_jam(k, "j", 2, true);
  unroll_and_jam(k, "i", 4, true);
  strength_reduce(k);
  // A references must appear with offsets 0..3 on one cursor.
  std::set<std::int64_t> offsets;
  for_each_expr(k.body(), [&](const Expr& e) {
    if (const auto* ref = as<ArrayRef>(e)) {
      if (ref->base().rfind("ptr_A", 0) == 0)
        offsets.insert(as<IntConst>(ref->index())->value());
    }
  });
  EXPECT_EQ(offsets, (std::set<std::int64_t>{0, 1, 2, 3}));
}

TEST(StrengthReduce, InvariantRefsAreLeftAlone) {
  // x[5] inside the loop does not vary with i: no cursor for it.
  Kernel k("f", {{"n", ScalarType::kI64},
                 {"x", ScalarType::kPtrF64, true},
                 {"y", ScalarType::kPtrF64, false}});
  k.declare_local("i", ScalarType::kI64);
  StmtList inner;
  inner.push_back(assign(arr("y", var("i")), arr("x", ival(5))));
  StmtList body;
  body.push_back(forloop("i", ival(0), var("n"), 1, std::move(inner)));
  k.set_body(std::move(body));
  strength_reduce(k);
  EXPECT_EQ(count_ptr_locals(k), 1);  // only y gets a cursor
  bool x5_survives = false;
  for_each_expr(k.body(), [&](const Expr& e) {
    if (const auto* ref = as<ArrayRef>(e)) {
      if (ref->base() == "x") x5_survives = true;
    }
  });
  EXPECT_TRUE(x5_survives);
}

class StrengthSemantics : public ::testing::TestWithParam<BLayout> {};

TEST_P(StrengthSemantics, GemmAfterTilePreservesSemantics) {
  Kernel k = frontend::make_gemm_kernel(GetParam());
  unroll_and_jam(k, "j", 2, true);
  unroll_and_jam(k, "i", 4, true);
  unroll(k, "l", 2);
  strength_reduce(k);
  augem::testing::check_gemm_kernel_semantics(k, GetParam(), 8, 4, 7, 11);
}

INSTANTIATE_TEST_SUITE_P(Layouts, StrengthSemantics,
                         ::testing::Values(BLayout::kRowPanel,
                                           BLayout::kColMajor));

TEST(StrengthReduce, GemvPreservesSemantics) {
  Kernel k = frontend::make_gemv_kernel();
  unroll(k, "j", 4);
  strength_reduce(k);
  expect_all_refs_are_cursor_const(k);
  augem::testing::check_gemv_kernel_semantics(k, 13, 6, 17);
}

TEST(StrengthReduce, AxpyAndDotPreserveSemantics) {
  Kernel ka = frontend::make_axpy_kernel();
  unroll(ka, "i", 8);
  strength_reduce(ka);
  augem::testing::check_axpy_kernel_semantics(ka, 37);

  Kernel kd = frontend::make_dot_kernel();
  unroll(kd, "i", 8);
  strength_reduce(kd);
  augem::testing::check_dot_kernel_semantics(kd, 37);
}

TEST(StrengthReduce, RemainderLoopCursorsStartWhereMainEnded) {
  // n = 5, unroll 4: main handles i = 0..3, remainder i = 4. The remainder
  // cursor must be initialized from the live counter.
  Kernel k = frontend::make_axpy_kernel();
  unroll(k, "i", 4);
  strength_reduce(k);
  augem::testing::check_axpy_kernel_semantics(k, 5);
  augem::testing::check_axpy_kernel_semantics(k, 4);
  augem::testing::check_axpy_kernel_semantics(k, 3);
  augem::testing::check_axpy_kernel_semantics(k, 0);
}

}  // namespace
}  // namespace augem::transform
