#include "transform/ckernel.hpp"

#include <gtest/gtest.h>

#include "ir/visit.hpp"
#include "support/error.hpp"
#include "transform/scalarrep.hpp"
#include "../common/oracle.hpp"

namespace augem::transform {
namespace {

using namespace augem::ir;
using frontend::BLayout;
using frontend::KernelKind;

TEST(CKernelGen, ParamsToString) {
  CGenParams p;
  p.mr = 8;
  p.nr = 4;
  const std::string s = p.to_string();
  EXPECT_NE(s.find("mr=8"), std::string::npos);
  EXPECT_NE(s.find("nr=4"), std::string::npos);
  EXPECT_NE(s.find("prefetch=on"), std::string::npos);
}

TEST(CKernelGen, OutputIsThreeAddress) {
  for (KernelKind kind : {KernelKind::kGemm, KernelKind::kGemv,
                          KernelKind::kAxpy, KernelKind::kDot}) {
    Kernel k = generate_optimized_c(kind, BLayout::kRowPanel, {});
    EXPECT_NO_THROW(check_three_address_form(k));
  }
}

TEST(CKernelGen, RejectsInvalidParams) {
  CGenParams p;
  p.mr = 0;
  EXPECT_THROW(generate_optimized_c(KernelKind::kGemm, BLayout::kRowPanel, p),
               augem::Error);
  CGenParams q;
  q.unroll = -1;
  EXPECT_THROW(generate_optimized_c(KernelKind::kAxpy, BLayout::kRowPanel, q),
               augem::Error);
}

TEST(CKernelGen, GemmOutputShapeMatchesFig13) {
  CGenParams p;
  p.mr = 2;
  p.nr = 2;
  p.ku = 1;
  Kernel k = generate_optimized_c(KernelKind::kGemm, BLayout::kRowPanel, p);
  const std::string s = k.to_string();
  // The optimized kernel exhibits all the Fig. 13 ingredients:
  EXPECT_NE(s.find("ptr_A"), std::string::npos);   // strength-reduced cursors
  EXPECT_NE(s.find("ptr_C"), std::string::npos);
  EXPECT_NE(s.find("tmp"), std::string::npos);     // scalar replacement
  EXPECT_NE(s.find("__builtin_prefetch"), std::string::npos);
  EXPECT_NE(s.find("res"), std::string::npos);     // expanded accumulators
}

struct GemmCase {
  int mr, nr, ku;
  BLayout layout;
};

class GemmPipeline : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmPipeline, SemanticsPreservedAcrossTileSpace) {
  const GemmCase c = GetParam();
  CGenParams p;
  p.mr = c.mr;
  p.nr = c.nr;
  p.ku = c.ku;
  Kernel k = generate_optimized_c(KernelKind::kGemm, c.layout, p);
  augem::testing::check_gemm_kernel_semantics(
      k, c.layout, /*mc=*/2 * c.mr, /*nc=*/2 * c.nr, /*kc=*/2 * c.ku + 3,
      /*ldc=*/2 * c.mr + 1);
}

INSTANTIATE_TEST_SUITE_P(
    TileSweep, GemmPipeline,
    ::testing::Values(GemmCase{1, 1, 1, BLayout::kRowPanel},
                      GemmCase{2, 2, 1, BLayout::kRowPanel},
                      GemmCase{4, 2, 1, BLayout::kRowPanel},
                      GemmCase{4, 4, 2, BLayout::kRowPanel},
                      GemmCase{8, 2, 2, BLayout::kRowPanel},
                      GemmCase{8, 4, 4, BLayout::kRowPanel},
                      GemmCase{2, 2, 1, BLayout::kColMajor},
                      GemmCase{4, 4, 2, BLayout::kColMajor},
                      GemmCase{8, 2, 4, BLayout::kColMajor}));

class Level1Pipeline : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Level1Pipeline, AxpySemantics) {
  const auto [u, n] = GetParam();
  CGenParams p;
  p.unroll = u;
  Kernel k = generate_optimized_c(KernelKind::kAxpy, BLayout::kRowPanel, p);
  augem::testing::check_axpy_kernel_semantics(k, n);
}

TEST_P(Level1Pipeline, DotSemantics) {
  const auto [u, n] = GetParam();
  CGenParams p;
  p.unroll = u;
  Kernel k = generate_optimized_c(KernelKind::kDot, BLayout::kRowPanel, p);
  augem::testing::check_dot_kernel_semantics(k, n);
}

TEST_P(Level1Pipeline, GemvSemantics) {
  const auto [u, m] = GetParam();
  CGenParams p;
  p.unroll = u;
  Kernel k = generate_optimized_c(KernelKind::kGemv, BLayout::kRowPanel, p);
  augem::testing::check_gemv_kernel_semantics(k, m, /*n=*/4, /*lda=*/m + 2);
}

INSTANTIATE_TEST_SUITE_P(
    UnrollSweep, Level1Pipeline,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(1, 7, 16, 33, 100)));

}  // namespace
}  // namespace augem::transform
