#include "transform/prefetch.hpp"

#include <gtest/gtest.h>

#include "frontend/kernels.hpp"
#include "ir/visit.hpp"
#include "transform/scalarrep.hpp"
#include "transform/strength.hpp"
#include "transform/unroll.hpp"
#include "../common/oracle.hpp"

namespace augem::transform {
namespace {

using namespace augem::ir;
using frontend::BLayout;

Kernel tiled_gemm() {
  Kernel k = frontend::make_gemm_kernel();
  unroll_and_jam(k, "j", 2, true);
  unroll_and_jam(k, "i", 2, true);
  strength_reduce(k);
  scalar_replace(k);
  return k;
}

int count_prefetches(const StmtList& body) {
  int n = 0;
  for_each_stmt(body, [&](const Stmt& s) {
    if (s.kind() == StmtKind::kPrefetch) ++n;
  });
  return n;
}

TEST(Prefetch, DisabledIsNoop) {
  Kernel k = tiled_gemm();
  Kernel orig = k.clone();
  PrefetchConfig cfg;
  cfg.enabled = false;
  insert_prefetch(k, cfg);
  EXPECT_TRUE(stmts_equal(k.body(), orig.body()));
}

TEST(Prefetch, GemmGetsStreamAndStorePrefetches) {
  Kernel k = tiled_gemm();
  insert_prefetch(k, {});
  // Streams: ptr_A + ptr_B in the l-loop. Stores: ptr_C0, ptr_C1 before it.
  // That is >= 4 prefetches, echoing the "three prefetching instructions"
  // of the paper's 2-cursor Fig. 13 (we track C with two cursors).
  EXPECT_GE(count_prefetches(k.body()), 4);
}

TEST(Prefetch, StorePrefetchSitsBeforeInnerLoop) {
  Kernel k = tiled_gemm();
  insert_prefetch(k, {});
  // In the i-loop body, prefetches of the C cursors must precede the l loop.
  const ForStmt* i_loop = nullptr;
  for_each_stmt(k.body(), [&](const Stmt& s) {
    if (const auto* f = as<ForStmt>(s)) {
      if (f->var() == "i") i_loop = f;
    }
  });
  ASSERT_NE(i_loop, nullptr);
  bool seen_l = false;
  int c_prefetch_before_l = 0;
  for (const StmtPtr& s : i_loop->body()) {
    if (s->kind() == StmtKind::kFor) seen_l = true;
    if (const auto* p = as<Prefetch>(*s)) {
      if (!seen_l && p->base().rfind("ptr_C", 0) == 0) ++c_prefetch_before_l;
    }
  }
  EXPECT_EQ(c_prefetch_before_l, 2);
}

TEST(Prefetch, StreamPrefetchUsesDistance) {
  Kernel k = tiled_gemm();
  PrefetchConfig cfg;
  cfg.distance = 24;
  insert_prefetch(k, cfg);
  bool found = false;
  for_each_stmt(k.body(), [&](const Stmt& s) {
    if (const auto* p = as<Prefetch>(s)) {
      if (const auto* c = as<IntConst>(p->index())) found |= (c->value() == 24);
    }
  });
  EXPECT_TRUE(found);
}

TEST(Prefetch, StorePrefetchCanBeDisabledSeparately) {
  Kernel k = tiled_gemm();
  PrefetchConfig cfg;
  cfg.prefetch_stores = false;
  insert_prefetch(k, cfg);
  for_each_stmt(k.body(), [&](const Stmt& s) {
    if (const auto* p = as<Prefetch>(s))
      EXPECT_NE(p->base().rfind("ptr_C", 0), 0u) << "unexpected C prefetch";
  });
}

TEST(Prefetch, SemanticsUnchanged) {
  Kernel k = tiled_gemm();
  insert_prefetch(k, {});
  augem::testing::check_gemm_kernel_semantics(k, BLayout::kRowPanel, 4, 4, 6, 7);

  Kernel ka = frontend::make_axpy_kernel();
  unroll(ka, "i", 4);
  strength_reduce(ka);
  scalar_replace(ka);
  insert_prefetch(ka, {});
  augem::testing::check_axpy_kernel_semantics(ka, 21);
}

}  // namespace
}  // namespace augem::transform
