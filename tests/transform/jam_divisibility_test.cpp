// unroll&jam has no remainder story: once iterations are jammed into one
// fused body, a leftover trip cannot be peeled back out. The transform must
// therefore *reject* assume_divisible == false with an error that explains
// the constraint and names the alternatives — a silent wrong-answer here was
// only caught by the differential harness on tile-misaligned shapes.

#include <gtest/gtest.h>

#include <string>

#include "frontend/kernels.hpp"
#include "support/error.hpp"
#include "transform/unroll.hpp"

namespace augem::transform {
namespace {

TEST(UnrollAndJamDivisibility, RejectsNonDivisibleRequest) {
  ir::Kernel k = frontend::make_gemm_kernel();
  EXPECT_THROW(unroll_and_jam(k, "j", 2, /*assume_divisible=*/false),
               augem::Error);
}

TEST(UnrollAndJamDivisibility, ErrorExplainsTheConstraintAndTheFix) {
  ir::Kernel k = frontend::make_gemm_kernel();
  try {
    unroll_and_jam(k, "j", 4, /*assume_divisible=*/false);
    FAIL() << "expected augem::Error";
  } catch (const augem::Error& e) {
    const std::string msg = e.what();
    // Names the loop and factor of the offending request…
    EXPECT_NE(msg.find("'j'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("factor 4"), std::string::npos) << msg;
    // …explains why (no remainder loop can exist once copies are jammed)…
    EXPECT_NE(msg.find("remainder"), std::string::npos) << msg;
    // …and points at both escape hatches.
    EXPECT_NE(msg.find("padded_gemm_block_kernel"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unroll()"), std::string::npos) << msg;
  }
}

TEST(UnrollAndJamDivisibility, FactorOneIsAlwaysLegal) {
  // factor == 1 jams nothing; divisibility is vacuous and must not throw.
  ir::Kernel k = frontend::make_gemm_kernel();
  EXPECT_NO_THROW(unroll_and_jam(k, "j", 1, /*assume_divisible=*/false));
}

}  // namespace
}  // namespace augem::transform
