#include "transform/unroll.hpp"

#include <gtest/gtest.h>

#include "frontend/kernels.hpp"
#include "ir/visit.hpp"
#include "support/error.hpp"
#include "../common/oracle.hpp"

namespace augem::transform {
namespace {

using namespace augem::ir;
using frontend::BLayout;

const ForStmt* find_loop(const StmtList& body, const std::string& v) {
  const ForStmt* found = nullptr;
  for_each_stmt(body, [&](const Stmt& s) {
    if (const auto* f = as<ForStmt>(s))
      if (f->var() == v) found = f;
  });
  return found;
}

int count_loops_over(const StmtList& body, const std::string& v) {
  int n = 0;
  for_each_stmt(body, [&](const Stmt& s) {
    if (const auto* f = as<ForStmt>(s))
      if (f->var() == v) ++n;
  });
  return n;
}

TEST(Unroll, FactorOneIsNoop) {
  Kernel k = frontend::make_axpy_kernel();
  Kernel orig = k.clone();
  unroll(k, "i", 1);
  EXPECT_TRUE(stmts_equal(k.body(), orig.body()));
}

TEST(Unroll, CreatesMainAndRemainderLoops) {
  Kernel k = frontend::make_axpy_kernel();
  unroll(k, "i", 4);
  EXPECT_EQ(count_loops_over(k.body(), "i"), 2);
  const ForStmt* main = as<ForStmt>(*k.body()[0]);
  ASSERT_NE(main, nullptr);
  EXPECT_EQ(main->step(), 4);
  EXPECT_EQ(main->body().size(), 4u);
  // Main loop bound shrinks by factor*step - 1.
  EXPECT_EQ(main->upper().to_string(), "(n - 3)");
  // Remainder continues from the counter.
  const ForStmt* rem = as<ForStmt>(*k.body()[1]);
  ASSERT_NE(rem, nullptr);
  EXPECT_EQ(rem->step(), 1);
  EXPECT_EQ(rem->lower().to_string(), "i");
}

TEST(Unroll, DivisibleSkipsRemainder) {
  Kernel k = frontend::make_axpy_kernel();
  unroll(k, "i", 4, /*assume_divisible=*/true);
  EXPECT_EQ(count_loops_over(k.body(), "i"), 1);
  const ForStmt* main = as<ForStmt>(*k.body()[0]);
  EXPECT_EQ(main->upper().to_string(), "n");
}

TEST(Unroll, SubscriptsAreOffsetAndSimplified) {
  Kernel k = frontend::make_axpy_kernel();
  unroll(k, "i", 2, true);
  const ForStmt* main = find_loop(k.body(), "i");
  ASSERT_NE(main, nullptr);
  const std::string s0 = main->body()[0]->to_string(0);
  const std::string s1 = main->body()[1]->to_string(0);
  EXPECT_NE(s0.find("x[i]"), std::string::npos);
  EXPECT_NE(s1.find("x[(1 + i)]"), std::string::npos);
}

TEST(Unroll, UnknownLoopThrows) {
  Kernel k = frontend::make_axpy_kernel();
  EXPECT_THROW(unroll(k, "zz", 2), augem::Error);
}

TEST(Unroll, BadFactorThrows) {
  Kernel k = frontend::make_axpy_kernel();
  EXPECT_THROW(unroll(k, "i", 0), augem::Error);
}

// Semantics preserved for awkward trip counts (0, 1, < factor, = factor,
// non-multiples).
class UnrollSemantics : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(UnrollSemantics, AxpyMatchesReference) {
  const auto [factor, n] = GetParam();
  Kernel k = frontend::make_axpy_kernel();
  unroll(k, "i", factor);
  augem::testing::check_axpy_kernel_semantics(k, n);
}

TEST_P(UnrollSemantics, DotMatchesReference) {
  const auto [factor, n] = GetParam();
  Kernel k = frontend::make_dot_kernel();
  unroll(k, "i", factor);
  augem::testing::check_dot_kernel_semantics(k, n);
}

TEST_P(UnrollSemantics, GemvInnerUnrollMatchesReference) {
  const auto [factor, m] = GetParam();
  Kernel k = frontend::make_gemv_kernel();
  unroll(k, "j", factor);
  augem::testing::check_gemv_kernel_semantics(k, m, /*n=*/5, /*lda=*/m + 3);
}

INSTANTIATE_TEST_SUITE_P(
    FactorsAndSizes, UnrollSemantics,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),
                       ::testing::Values(0, 1, 3, 8, 17, 64)));

TEST(Unroll, InnerGemmLoopWithRemainder) {
  Kernel k = frontend::make_gemm_kernel();
  unroll(k, "l", 4);
  augem::testing::check_gemm_kernel_semantics(k, BLayout::kRowPanel, 3, 2, 10, 5);
  Kernel k2 = frontend::make_gemm_kernel();
  unroll(k2, "l", 4);
  augem::testing::check_gemm_kernel_semantics(k2, BLayout::kRowPanel, 3, 2, 3, 5);
}

TEST(Unroll, NestedUnrollOfTwoLoops) {
  Kernel k = frontend::make_gemm_kernel();
  unroll(k, "l", 2);
  unroll(k, "i", 2, true);  // both copies of the l-loop nest under i copies
  augem::testing::check_gemm_kernel_semantics(k, BLayout::kRowPanel, 4, 3, 7, 6);
}

}  // namespace
}  // namespace augem::transform
