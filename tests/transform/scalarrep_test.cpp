#include "transform/scalarrep.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "frontend/kernels.hpp"
#include "ir/visit.hpp"
#include "support/error.hpp"
#include "transform/strength.hpp"
#include "transform/unroll.hpp"
#include "../common/oracle.hpp"

namespace augem::transform {
namespace {

using namespace augem::ir;
using frontend::BLayout;

const ForStmt* first_loop(const StmtList& body, const std::string& v) {
  const ForStmt* found = nullptr;
  for_each_stmt(body, [&](const Stmt& s) {
    if (const auto* f = as<ForStmt>(s)) {
      if (f->var() == v && found == nullptr) found = f;
    }
  });
  return found;
}

TEST(ScalarReplace, MmCompBecomesFourStatements) {
  // res = res + A[l*mc+i]*B[l*nc+j] → Load, Load, Mul, Add (paper §3.1).
  Kernel k = frontend::make_gemm_kernel();
  scalar_replace(k);
  check_three_address_form(k);
  const ForStmt* l = first_loop(k.body(), "l");
  ASSERT_NE(l, nullptr);
  ASSERT_EQ(l->body().size(), 4u);
  const std::string s3 = l->body()[3]->to_string(0);
  EXPECT_NE(s3.find("res = (res + tmp"), std::string::npos);
}

TEST(ScalarReplace, MmStoreBecomesThreeStatements) {
  // C[idx] = C[idx] + res → Load, Add, Store (paper §3.2).
  Kernel k = frontend::make_gemm_kernel();
  scalar_replace(k);
  const ForStmt* i = first_loop(k.body(), "i");
  ASSERT_NE(i, nullptr);
  // i body: res init, l loop, then the 3-statement store.
  ASSERT_EQ(i->body().size(), 5u);
  EXPECT_EQ(i->body()[4]->to_string(0).rfind("C[", 0), 0u);
}

TEST(ScalarReplace, MvCompBecomesFiveStatements) {
  // y[j] = y[j] + A[..]*scal → Load, Load, Mul, Add, Store (paper §3.3).
  Kernel k = frontend::make_gemv_kernel();
  scalar_replace(k);
  check_three_address_form(k);
  const ForStmt* j = first_loop(k.body(), "j");
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(j->body().size(), 5u);
}

TEST(ScalarReplace, LoadsAndCopiesPassThrough) {
  Kernel k = frontend::make_gemv_kernel();
  scalar_replace(k);
  // `scal = x[i]` is already a load; it must survive unchanged.
  bool found = false;
  for_each_stmt(k.body(), [&](const Stmt& s) {
    if (s.to_string(0).find("scal = x[i];") != std::string::npos) found = true;
  });
  EXPECT_TRUE(found);
}

TEST(ScalarReplace, IntegerAssignsUntouched) {
  Kernel k = frontend::make_gemm_kernel();
  strength_reduce(k);  // introduces pointer assignments
  Kernel before = k.clone();
  scalar_replace(k);
  // Pointer updates like `ptr = ptr + mc` must appear verbatim.
  int ptr_updates_before = 0, ptr_updates_after = 0;
  auto count = [](const Kernel& kk, int& n) {
    for_each_stmt(kk.body(), [&](const Stmt& s) {
      if (const auto* a = as<Assign>(s)) {
        const auto* v = as<VarRef>(a->lhs());
        if (v != nullptr && kk.type_of(v->name()) == ScalarType::kPtrF64) ++n;
      }
    });
  };
  count(before, ptr_updates_before);
  count(k, ptr_updates_after);
  EXPECT_EQ(ptr_updates_before, ptr_updates_after);
}

TEST(ScalarReplace, TempsAreSingleUse) {
  Kernel k = frontend::make_gemm_kernel();
  unroll_and_jam(k, "j", 2, true);
  unroll_and_jam(k, "i", 2, true);
  strength_reduce(k);
  scalar_replace(k);
  // Each tmp is written once and read once.
  std::map<std::string, int> writes, reads;
  for_each_stmt(k.body(), [&](const Stmt& s) {
    const auto* a = as<Assign>(s);
    if (a == nullptr) return;
    if (const auto* v = as<VarRef>(a->lhs())) {
      if (v->name().rfind("tmp", 0) == 0) ++writes[v->name()];
    }
    std::function<void(const Expr&)> walk = [&](const Expr& e) {
      if (const auto* v = as<VarRef>(e)) {
        if (v->name().rfind("tmp", 0) == 0) ++reads[v->name()];
      } else if (const auto* b = as<Binary>(e)) {
        walk(b->lhs());
        walk(b->rhs());
      } else if (const auto* r = as<ArrayRef>(e)) {
        walk(r->index());
      }
    };
    walk(a->rhs());
  });
  EXPECT_FALSE(writes.empty());
  for (const auto& [name, n] : writes) EXPECT_EQ(n, 1) << name;
  for (const auto& [name, n] : reads) EXPECT_EQ(n, 1) << name;
}

TEST(ScalarReplace, CheckRejectsNonThreeAddress) {
  Kernel k = frontend::make_dot_kernel();  // rhs has a nested multiply
  EXPECT_THROW(check_three_address_form(k), augem::Error);
  scalar_replace(k);
  EXPECT_NO_THROW(check_three_address_form(k));
}

class ScalarRepSemantics : public ::testing::TestWithParam<BLayout> {};

TEST_P(ScalarRepSemantics, FullGemmPipelinePreservesSemantics) {
  Kernel k = frontend::make_gemm_kernel(GetParam());
  unroll_and_jam(k, "j", 2, true);
  unroll_and_jam(k, "i", 4, true);
  unroll(k, "l", 2);
  strength_reduce(k);
  scalar_replace(k);
  augem::testing::check_gemm_kernel_semantics(k, GetParam(), 8, 6, 9, 10);
}

INSTANTIATE_TEST_SUITE_P(Layouts, ScalarRepSemantics,
                         ::testing::Values(BLayout::kRowPanel,
                                           BLayout::kColMajor));

TEST(ScalarReplace, Level1PipelinesPreserveSemantics) {
  Kernel ka = frontend::make_axpy_kernel();
  unroll(ka, "i", 4);
  strength_reduce(ka);
  scalar_replace(ka);
  augem::testing::check_axpy_kernel_semantics(ka, 19);

  Kernel kd = frontend::make_dot_kernel();
  unroll(kd, "i", 4);
  strength_reduce(kd);
  scalar_replace(kd);
  augem::testing::check_dot_kernel_semantics(kd, 19);

  Kernel kv = frontend::make_gemv_kernel();
  unroll(kv, "j", 4);
  strength_reduce(kv);
  scalar_replace(kv);
  augem::testing::check_gemv_kernel_semantics(kv, 11, 5, 12);
}

}  // namespace
}  // namespace augem::transform
