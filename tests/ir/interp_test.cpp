#include "ir/interp.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "frontend/kernels.hpp"
#include "support/error.hpp"
#include "../common/oracle.hpp"

namespace augem::ir {
namespace {

TEST(Interp, SimpleAssignAndReturn) {
  Kernel k("f", {{"n", ScalarType::kI64}});
  k.declare_local("res", ScalarType::kF64);
  StmtList body;
  body.push_back(assign(var("res"), fval(2.5)));
  k.set_body(std::move(body));
  k.set_return_var("res");
  EXPECT_DOUBLE_EQ(interpret(k, {{"n", std::int64_t{0}}}), 2.5);
}

TEST(Interp, LoopAccumulates) {
  Kernel k("f", {{"n", ScalarType::kI64}});
  k.declare_local("i", ScalarType::kI64);
  k.declare_local("res", ScalarType::kF64);
  StmtList inner;
  inner.push_back(assign(var("res"), add(var("res"), fval(1.0))));
  StmtList body;
  body.push_back(assign(var("res"), fval(0.0)));
  body.push_back(forloop("i", ival(0), var("n"), 1, std::move(inner)));
  k.set_body(std::move(body));
  k.set_return_var("res");
  EXPECT_DOUBLE_EQ(interpret(k, {{"n", std::int64_t{7}}}), 7.0);
}

TEST(Interp, SteppedLoopCountsCorrectly) {
  Kernel k("f", {{"n", ScalarType::kI64}});
  k.declare_local("i", ScalarType::kI64);
  k.declare_local("res", ScalarType::kF64);
  StmtList inner;
  inner.push_back(assign(var("res"), add(var("res"), fval(1.0))));
  StmtList body;
  body.push_back(assign(var("res"), fval(0.0)));
  body.push_back(forloop("i", ival(0), var("n"), 3, std::move(inner)));
  k.set_body(std::move(body));
  k.set_return_var("res");
  // i = 0, 3, 6 for n = 8 → 3 iterations.
  EXPECT_DOUBLE_EQ(interpret(k, {{"n", std::int64_t{8}}}), 3.0);
}

TEST(Interp, RemainderLoopContinuesCounter) {
  // for (i = 0; i < 5; i += 2) res += 1;  then  for (i = i; i < 7; i++) res += 10;
  Kernel k("f", {{"n", ScalarType::kI64}});
  k.declare_local("i", ScalarType::kI64);
  k.declare_local("res", ScalarType::kF64);
  StmtList b1, b2, body;
  b1.push_back(assign(var("res"), add(var("res"), fval(1.0))));
  b2.push_back(assign(var("res"), add(var("res"), fval(10.0))));
  body.push_back(assign(var("res"), fval(0.0)));
  body.push_back(forloop("i", ival(0), ival(5), 2, std::move(b1)));
  body.push_back(forloop("i", var("i"), ival(7), 1, std::move(b2)));
  k.set_body(std::move(body));
  k.set_return_var("res");
  // Main: i = 0,2,4 (3 iters, i ends at 6). Remainder: i = 6 (1 iter).
  EXPECT_DOUBLE_EQ(interpret(k, {{"n", std::int64_t{0}}}), 13.0);
}

TEST(Interp, ArrayLoadStoreAndPointerArithmetic) {
  Kernel k("f", {{"p", ScalarType::kPtrF64, false}});
  k.declare_local("q", ScalarType::kPtrF64);
  k.declare_local("t", ScalarType::kF64);
  StmtList body;
  body.push_back(assign(var("q"), add(var("p"), ival(2))));  // q = p + 2
  body.push_back(assign(var("t"), arr("q", ival(1))));       // t = q[1] = p[3]
  body.push_back(assign(arr("q", ival(0)), var("t")));       // q[0] = t → p[2]
  k.set_body(std::move(body));
  std::vector<double> data = {0, 1, 2, 3};
  interpret(k, {{"p", data.data()}});
  EXPECT_DOUBLE_EQ(data[2], 3.0);
}

TEST(Interp, PrefetchIsANoop) {
  Kernel k("f", {{"p", ScalarType::kPtrF64, true}});
  StmtList body;
  body.push_back(prefetch("p", ival(100000)));  // way out of bounds: ignored
  k.set_body(std::move(body));
  std::vector<double> data = {1.0};
  EXPECT_NO_THROW(interpret(k, {{"p", data.data()}}));
}

TEST(Interp, MissingArgumentThrows) {
  Kernel k = frontend::make_dot_kernel();
  EXPECT_THROW(interpret(k, {}), augem::Error);
}

TEST(Interp, UnboundVariableThrows) {
  Kernel k("f", {});
  StmtList body;
  body.push_back(assign(var("a"), var("b")));
  k.set_body(std::move(body));
  EXPECT_THROW(interpret(k, {}), augem::Error);
}

// ---- the four simple-C kernels match their mathematical contracts -------

TEST(Interp, SimpleGemmRowPanelMatchesReference) {
  augem::testing::check_gemm_kernel_semantics(
      frontend::make_gemm_kernel(frontend::BLayout::kRowPanel),
      frontend::BLayout::kRowPanel, 6, 5, 7, 9);
}

TEST(Interp, SimpleGemmColMajorMatchesReference) {
  augem::testing::check_gemm_kernel_semantics(
      frontend::make_gemm_kernel(frontend::BLayout::kColMajor),
      frontend::BLayout::kColMajor, 4, 3, 5, 6);
}

TEST(Interp, SimpleGemvMatchesReference) {
  augem::testing::check_gemv_kernel_semantics(frontend::make_gemv_kernel(),
                                              /*m=*/13, /*n=*/7, /*lda=*/15);
}

TEST(Interp, SimpleAxpyMatchesReference) {
  augem::testing::check_axpy_kernel_semantics(frontend::make_axpy_kernel(), 23);
}

TEST(Interp, SimpleDotMatchesReference) {
  augem::testing::check_dot_kernel_semantics(frontend::make_dot_kernel(), 31);
}

}  // namespace
}  // namespace augem::ir
