#include "ir/stmt.hpp"

#include <gtest/gtest.h>

namespace augem::ir {
namespace {

StmtPtr sample_loop() {
  StmtList body;
  body.push_back(assign(var("res"), add(var("res"), arr("A", var("i")))));
  return forloop("i", ival(0), var("n"), 1, std::move(body));
}

TEST(Stmt, AssignPrints) {
  auto s = assign(var("tmp0"), arr("A", ival(0)));
  EXPECT_EQ(s->to_string(0), "tmp0 = A[0];");
}

TEST(Stmt, AssignWithTagPrintsAnnotation) {
  auto s = assign(var("tmp0"), arr("A", ival(0)));
  s->set_template_tag("mmCOMP", 3);
  EXPECT_NE(s->to_string(0).find("mmCOMP#3"), std::string::npos);
}

TEST(Stmt, ForLoopPrintsHeaderAndBody) {
  const std::string text = sample_loop()->to_string(0);
  EXPECT_NE(text.find("for (i = 0; i < n; i++)"), std::string::npos);
  EXPECT_NE(text.find("res = (res + A[i]);"), std::string::npos);
}

TEST(Stmt, ForLoopWithStepPrintsPlusEquals) {
  auto s = forloop("j", ival(0), var("n"), 4, {});
  EXPECT_NE(s->to_string(0).find("j += 4"), std::string::npos);
}

TEST(Stmt, PrefetchPrints) {
  auto s = prefetch("A", add(var("i"), ival(64)), 0);
  EXPECT_EQ(s->to_string(0), "__builtin_prefetch(&A[(i + 64)], 0, 0);");
}

TEST(Stmt, CloneIsDeepEqualAndKeepsTag) {
  auto s = sample_loop();
  s->set_template_tag("outer", 1);
  auto c = s->clone();
  EXPECT_TRUE(s->equals(*c));
  EXPECT_EQ(c->template_tag(), "outer");
  EXPECT_EQ(c->region_id(), 1);
}

TEST(Stmt, EqualsIgnoresTemplateTags) {
  auto a = assign(var("x"), ival(1));
  auto b = assign(var("x"), ival(1));
  b->set_template_tag("mmSTORE", 7);
  EXPECT_TRUE(a->equals(*b));
}

TEST(Stmt, EqualsDistinguishesLoops) {
  auto a = forloop("i", ival(0), var("n"), 1, {});
  auto b = forloop("i", ival(0), var("n"), 2, {});
  auto c = forloop("k", ival(0), var("n"), 1, {});
  EXPECT_FALSE(a->equals(*b));
  EXPECT_FALSE(a->equals(*c));
}

TEST(Stmt, CloneStmtsCopiesAll) {
  StmtList l;
  l.push_back(assign(var("a"), ival(1)));
  l.push_back(sample_loop());
  StmtList c = clone_stmts(l);
  EXPECT_TRUE(stmts_equal(l, c));
  EXPECT_NE(l[0].get(), c[0].get());
}

TEST(Stmt, ClearTemplateTag) {
  auto s = assign(var("x"), ival(1));
  s->set_template_tag("mmCOMP", 2);
  s->clear_template_tag();
  EXPECT_TRUE(s->template_tag().empty());
  EXPECT_EQ(s->region_id(), -1);
}

}  // namespace
}  // namespace augem::ir
