#include "ir/kernel.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace augem::ir {
namespace {

Kernel sample_kernel() {
  Kernel k("axpy", {{"n", ScalarType::kI64},
                    {"alpha", ScalarType::kF64},
                    {"x", ScalarType::kPtrF64, true},
                    {"y", ScalarType::kPtrF64, false}});
  k.declare_local("i", ScalarType::kI64);
  StmtList body;
  body.push_back(forloop("i", ival(0), var("n"), 1, {}));
  k.set_body(std::move(body));
  return k;
}

TEST(Kernel, TypeLookup) {
  Kernel k = sample_kernel();
  EXPECT_EQ(k.type_of("n"), ScalarType::kI64);
  EXPECT_EQ(k.type_of("alpha"), ScalarType::kF64);
  EXPECT_EQ(k.type_of("x"), ScalarType::kPtrF64);
  EXPECT_EQ(k.type_of("i"), ScalarType::kI64);
  EXPECT_THROW(k.type_of("nope"), augem::Error);
}

TEST(Kernel, DeclaredAndParamChecks) {
  Kernel k = sample_kernel();
  EXPECT_TRUE(k.is_declared("n"));
  EXPECT_TRUE(k.is_declared("i"));
  EXPECT_FALSE(k.is_declared("zz"));
  EXPECT_TRUE(k.is_param("n"));
  EXPECT_FALSE(k.is_param("i"));
}

TEST(Kernel, DuplicateDeclarationThrows) {
  Kernel k = sample_kernel();
  EXPECT_THROW(k.declare_local("n", ScalarType::kI64), augem::Error);
  EXPECT_THROW(k.declare_local("i", ScalarType::kF64), augem::Error);
}

TEST(Kernel, EnsureLocalIsIdempotentButTypeChecked) {
  Kernel k = sample_kernel();
  k.ensure_local("tmp", ScalarType::kF64);
  EXPECT_NO_THROW(k.ensure_local("tmp", ScalarType::kF64));
  EXPECT_THROW(k.ensure_local("tmp", ScalarType::kI64), augem::Error);
}

TEST(Kernel, RemoveLocal) {
  Kernel k = sample_kernel();
  k.declare_local("tmp", ScalarType::kF64);
  k.remove_local("tmp");
  EXPECT_FALSE(k.is_declared("tmp"));
  EXPECT_THROW(k.remove_local("tmp"), augem::Error);
}

TEST(Kernel, FreshNamesNeverCollide) {
  Kernel k = sample_kernel();
  k.declare_local("tmp0", ScalarType::kF64);
  const std::string a = k.fresh_name("tmp");
  EXPECT_NE(a, "tmp0");
  k.declare_local(a, ScalarType::kF64);
  const std::string b = k.fresh_name("tmp");
  EXPECT_NE(b, a);
  EXPECT_NE(b, "tmp0");
}

TEST(Kernel, CloneIsDeep) {
  Kernel k = sample_kernel();
  Kernel c = k.clone();
  EXPECT_EQ(c.name(), "axpy");
  EXPECT_TRUE(stmts_equal(k.body(), c.body()));
  c.mutable_body().clear();
  EXPECT_EQ(k.body().size(), 1u);
}

TEST(Kernel, ToStringHasSignatureAndLocals) {
  Kernel k = sample_kernel();
  const std::string s = k.to_string();
  EXPECT_NE(s.find("void axpy(long n, double alpha, const double* x, double* y)"),
            std::string::npos);
  EXPECT_NE(s.find("long i;"), std::string::npos);
}

TEST(Kernel, ReturnVarPrintsDoubleSignature) {
  Kernel k("dot", {{"n", ScalarType::kI64}});
  k.declare_local("res", ScalarType::kF64);
  k.set_return_var("res");
  const std::string s = k.to_string();
  EXPECT_NE(s.find("double dot("), std::string::npos);
  EXPECT_NE(s.find("return res;"), std::string::npos);
}

}  // namespace
}  // namespace augem::ir
