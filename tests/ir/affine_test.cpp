#include "ir/affine.hpp"

#include <gtest/gtest.h>

namespace augem::ir {
namespace {

Poly poly_of(const ExprPtr& e) {
  auto p = to_poly(*e);
  EXPECT_TRUE(p.has_value());
  return *p;
}

TEST(Poly, ConstantsFold) {
  // (2 + 3) * 4 = 20
  auto p = poly_of(mul(add(ival(2), ival(3)), ival(4)));
  EXPECT_EQ(p.constant_part(), 20);
  EXPECT_EQ(p.terms().size(), 1u);
}

TEST(Poly, ZeroVanishes) {
  auto p = poly_of(sub(var("i"), var("i")));
  EXPECT_TRUE(p.terms().empty());
  EXPECT_EQ(p.to_expr()->to_string(), "0");
}

TEST(Poly, CanonicalOrderingMakesEqualitySemantic) {
  auto a = poly_of(add(mul(var("l"), var("mc")), var("i")));
  auto b = poly_of(add(var("i"), mul(var("mc"), var("l"))));
  EXPECT_EQ(a, b);
}

TEST(Poly, CoefficientOfLoopVar) {
  // (j * ldc + i): coeff of j is ldc, coeff of i is 1.
  auto p = poly_of(add(mul(var("j"), var("ldc")), var("i")));
  auto cj = p.coefficient_of("j");
  ASSERT_TRUE(cj.has_value());
  EXPECT_EQ(cj->to_expr()->to_string(), "ldc");
  auto ci = p.coefficient_of("i");
  ASSERT_TRUE(ci.has_value());
  EXPECT_EQ(ci->constant_part(), 1);
}

TEST(Poly, CoefficientOfAbsentVarIsZero) {
  auto p = poly_of(var("i"));
  auto c = p.coefficient_of("j");
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(c->terms().empty());
}

TEST(Poly, QuadraticHasNoLinearCoefficient) {
  auto p = poly_of(mul(var("i"), var("i")));
  EXPECT_FALSE(p.coefficient_of("i").has_value());
}

TEST(Poly, SubstituteUnrolls) {
  // (l * mc + i) with l := l + 1  →  l*mc + mc + i
  auto p = poly_of(add(mul(var("l"), var("mc")), var("i")));
  auto q = p.substitute("l", poly_of(add(var("l"), ival(1))));
  auto expected = poly_of(add(add(mul(var("l"), var("mc")), var("mc")), var("i")));
  EXPECT_EQ(q, expected);
}

TEST(Poly, SubstituteConstant) {
  auto p = poly_of(add(mul(var("i"), ival(8)), ival(3)));
  auto q = p.substitute("i", Poly::constant(2));
  EXPECT_EQ(q.constant_part(), 19);
}

TEST(Poly, WithoutConstantAndConstantPart) {
  auto p = poly_of(add(add(var("i"), ival(5)), mul(var("j"), var("k"))));
  EXPECT_EQ(p.constant_part(), 5);
  auto nc = p.without_constant();
  EXPECT_EQ(nc.constant_part(), 0);
  EXPECT_EQ((nc + Poly::constant(5)), p);
}

TEST(Poly, IndependentOf) {
  auto p = poly_of(add(mul(var("j"), var("ldc")), var("i")));
  EXPECT_FALSE(p.independent_of("j"));
  EXPECT_FALSE(p.independent_of("ldc"));
  EXPECT_TRUE(p.independent_of("l"));
}

TEST(Poly, DropTermsWith) {
  auto p = poly_of(add(mul(var("j"), var("ldc")), var("i")));
  auto d = p.drop_terms_with("j");
  EXPECT_EQ(d.to_expr()->to_string(), "i");
}

TEST(Poly, ArithmeticRoundTripThroughExpr) {
  auto p = poly_of(add(mul(ival(2), var("a")), mul(var("b"), var("c"))));
  auto q = poly_of(p.to_expr());
  EXPECT_EQ(p, q);
}

TEST(Poly, NegativeCoefficientPrints) {
  auto p = poly_of(sub(ival(0), var("x")));
  auto q = poly_of(p.to_expr());
  EXPECT_EQ(p, q);
}

TEST(Poly, NonPolynomialReturnsNullopt) {
  EXPECT_FALSE(to_poly(*fval(1.0)).has_value());
  EXPECT_FALSE(to_poly(*arr("A", ival(0))).has_value());
  EXPECT_FALSE(to_poly(*add(var("i"), arr("A", ival(0)))).has_value());
}

TEST(Poly, SimplifyIndexFoldsUnrolledSubscript) {
  // (i + 0) stays i; ((l + 1) * 4) becomes 4*l + 4.
  EXPECT_EQ(simplify_index(*add(var("i"), ival(0)))->to_string(), "i");
  auto s = simplify_index(*mul(add(var("l"), ival(1)), ival(4)));
  auto p = to_poly(*s);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->constant_part(), 4);
}

}  // namespace
}  // namespace augem::ir
