#include "ir/expr.hpp"

#include <gtest/gtest.h>

namespace augem::ir {
namespace {

TEST(Expr, IntConstRoundTrip) {
  auto e = ival(42);
  EXPECT_EQ(e->kind(), ExprKind::kIntConst);
  EXPECT_EQ(as<IntConst>(*e)->value(), 42);
  EXPECT_EQ(e->to_string(), "42");
}

TEST(Expr, FloatConstPrintsAsDouble) {
  EXPECT_EQ(fval(0.0)->to_string(), "0.0");
  EXPECT_EQ(fval(2.0)->to_string(), "2.0");
  EXPECT_EQ(fval(-3.0)->to_string(), "-3.0");
}

TEST(Expr, VarRefName) {
  auto e = var("tmp0");
  EXPECT_EQ(as<VarRef>(*e)->name(), "tmp0");
  EXPECT_EQ(e->to_string(), "tmp0");
}

TEST(Expr, ArrayRefPrints) {
  auto e = arr("A", add(var("i"), ival(1)));
  EXPECT_EQ(e->to_string(), "A[(i + 1)]");
  EXPECT_EQ(as<ArrayRef>(*e)->base(), "A");
}

TEST(Expr, BinaryPrintsFullyParenthesized) {
  auto e = mul(add(var("a"), var("b")), var("c"));
  EXPECT_EQ(e->to_string(), "((a + b) * c)");
}

TEST(Expr, CloneIsDeepAndEqual) {
  auto e = add(arr("A", mul(var("l"), var("mc"))), fval(1.5));
  auto c = e->clone();
  EXPECT_TRUE(e->equals(*c));
  EXPECT_NE(e.get(), c.get());
}

TEST(Expr, EqualsDistinguishesStructure) {
  EXPECT_FALSE(ival(1)->equals(*ival(2)));
  EXPECT_FALSE(var("a")->equals(*var("b")));
  EXPECT_FALSE(add(var("a"), var("b"))->equals(*sub(var("a"), var("b"))));
  EXPECT_FALSE(add(var("a"), var("b"))->equals(*add(var("b"), var("a"))));
  EXPECT_FALSE(ival(1)->equals(*fval(1.0)));
  EXPECT_FALSE(arr("A", ival(0))->equals(*arr("B", ival(0))));
}

TEST(Expr, AsReturnsNullOnWrongKind) {
  auto e = ival(1);
  EXPECT_EQ(as<VarRef>(*e), nullptr);
  EXPECT_NE(as<IntConst>(*e), nullptr);
}

TEST(Expr, BinopTokens) {
  EXPECT_STREQ(binop_token(BinOp::kAdd), "+");
  EXPECT_STREQ(binop_token(BinOp::kSub), "-");
  EXPECT_STREQ(binop_token(BinOp::kMul), "*");
}

}  // namespace
}  // namespace augem::ir
