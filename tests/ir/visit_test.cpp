#include "ir/visit.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace augem::ir {
namespace {

StmtList sample_nest() {
  StmtList inner;
  inner.push_back(assign(var("res"), add(var("res"), arr("A", var("l")))));
  StmtList outer;
  outer.push_back(assign(var("res"), fval(0.0)));
  outer.push_back(forloop("l", ival(0), var("kc"), 1, std::move(inner)));
  StmtList top;
  top.push_back(forloop("i", ival(0), var("mc"), 1, std::move(outer)));
  return top;
}

TEST(Visit, ForEachStmtVisitsNested) {
  int count = 0;
  for_each_stmt(sample_nest(), [&](const Stmt&) { ++count; });
  EXPECT_EQ(count, 4);  // outer for, assign, inner for, inner assign
}

TEST(Visit, ForEachExprSeesLoopBounds) {
  std::vector<std::string> vars;
  for_each_expr(sample_nest(), [&](const Expr& e) {
    if (const auto* v = as<VarRef>(e)) vars.push_back(v->name());
  });
  // mc and kc appear as loop bounds; l appears as subscript; res twice more.
  EXPECT_NE(std::find(vars.begin(), vars.end(), "mc"), vars.end());
  EXPECT_NE(std::find(vars.begin(), vars.end(), "kc"), vars.end());
  EXPECT_NE(std::find(vars.begin(), vars.end(), "l"), vars.end());
}

TEST(Visit, RewriteExprReplacesLeaf) {
  auto e = add(var("i"), mul(var("i"), ival(2)));
  auto r = rewrite_expr(*e, [](const Expr& node) -> ExprPtr {
    if (const auto* v = as<VarRef>(node); v != nullptr && v->name() == "i")
      return ival(5);
    return nullptr;
  });
  EXPECT_EQ(r->to_string(), "(5 + (5 * 2))");
}

TEST(Visit, RewriteExprBottomUpSeesRebuiltChildren) {
  // Replace i→1 first, then the outer fn sees (1 + 1) and can fold it.
  auto e = add(var("i"), var("i"));
  auto r = rewrite_expr(*e, [](const Expr& node) -> ExprPtr {
    if (const auto* v = as<VarRef>(node); v != nullptr) return ival(1);
    if (const auto* b = as<Binary>(node); b != nullptr) {
      const auto* l = as<IntConst>(b->lhs());
      const auto* rr = as<IntConst>(b->rhs());
      if (l != nullptr && rr != nullptr && b->op() == BinOp::kAdd)
        return ival(l->value() + rr->value());
    }
    return nullptr;
  });
  EXPECT_EQ(r->to_string(), "2");
}

TEST(Visit, SubstituteVarInStmts) {
  StmtList l = substitute_var(sample_nest(), "l", *add(var("l"), ival(4)));
  bool found = false;
  for_each_expr(l, [&](const Expr& e) {
    if (const auto* a = as<ArrayRef>(e))
      found |= a->index().to_string() == "(l + 4)";
  });
  EXPECT_TRUE(found);
}

TEST(Visit, SubstituteDoesNotTouchArrayBases) {
  // Substituting variable "A" must not rename the array base A[...].
  StmtList l;
  l.push_back(assign(var("t"), arr("A", var("i"))));
  StmtList r = substitute_var(l, "A", *var("B"));
  const auto& a = *as<Assign>(*r[0]);
  EXPECT_EQ(as<ArrayRef>(a.rhs())->base(), "A");
}

TEST(Visit, RewritePreservesTemplateTags) {
  StmtList l;
  l.push_back(assign(var("t"), arr("A", var("i"))));
  l[0]->set_template_tag("mmCOMP", 9);
  StmtList r = substitute_var(l, "i", *ival(0));
  EXPECT_EQ(r[0]->template_tag(), "mmCOMP");
  EXPECT_EQ(r[0]->region_id(), 9);
}

TEST(Visit, RewriteHandlesPrefetchAndBounds) {
  StmtList l;
  l.push_back(prefetch("A", var("i")));
  l.push_back(forloop("j", var("i"), add(var("i"), ival(8)), 1, {}));
  StmtList r = substitute_var(l, "i", *ival(16));
  EXPECT_EQ(as<Prefetch>(*r[0])->index().to_string(), "16");
  EXPECT_EQ(as<ForStmt>(*r[1])->lower().to_string(), "16");
  EXPECT_EQ(as<ForStmt>(*r[1])->upper().to_string(), "(16 + 8)");
}

TEST(Visit, MentionsVar) {
  StmtList l = sample_nest();
  EXPECT_TRUE(mentions_var(l, "res"));
  EXPECT_TRUE(mentions_var(l, "A"));   // as array base
  EXPECT_TRUE(mentions_var(l, "kc"));  // in loop bound
  EXPECT_FALSE(mentions_var(l, "zz"));
}

TEST(Visit, MutableWalkCanRetag) {
  StmtList l = sample_nest();
  for_each_stmt_mutable(l, [](Stmt& s) {
    if (s.kind() == StmtKind::kAssign) s.set_template_tag("x", 0);
  });
  int tagged = 0;
  for_each_stmt(l, [&](const Stmt& s) {
    if (!s.template_tag().empty()) ++tagged;
  });
  EXPECT_EQ(tagged, 2);
}

}  // namespace
}  // namespace augem::ir
