#include "perf/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace augem::perf {
namespace {

TEST(Stats, MedianOddEvenEmpty) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, MedianIgnoresOutliers) {
  // One contaminated sample (an interrupt-stretched run) must not move the
  // median — this is the whole reason the harness is median-based.
  EXPECT_DOUBLE_EQ(median({1.0, 1.0, 1.0, 1.0, 500.0}), 1.0);
}

TEST(Stats, MadAroundCenter) {
  EXPECT_DOUBLE_EQ(mad({}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(mad({1.0, 1.0, 1.0}, 1.0), 0.0);
  // Deviations from 2: {1, 0, 1} -> median 1.
  EXPECT_DOUBLE_EQ(mad({1.0, 2.0, 3.0}, 2.0), 1.0);
}

TEST(Stats, SummarizeFields) {
  const Summary s = summarize({2.0, 1.0, 4.0, 3.0, 5.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mad, 1.0);
  // ci_half = 1.96 * 1.253 * (1.4826 * MAD) / sqrt(n)
  EXPECT_NEAR(s.ci_half, 1.96 * 1.253 * 1.4826 * 1.0 / std::sqrt(5.0), 1e-12);
  EXPECT_NEAR(s.rel_ci(), s.ci_half / 3.0, 1e-12);
}

TEST(Stats, CiCollapsesOnConstantSamples) {
  // MAD = 0 on a quantized clock -> zero-width interval (documented
  // behavior; the min_reps floor is what keeps this meaningful).
  const Summary s = summarize({2.0, 2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(s.ci_half, 0.0);
  EXPECT_DOUBLE_EQ(s.rel_ci(), 0.0);
}

TEST(Stats, RelCiZeroWhenMedianZero) {
  Summary s;
  s.median = 0.0;
  s.ci_half = 1.0;
  EXPECT_DOUBLE_EQ(s.rel_ci(), 0.0);
}

}  // namespace
}  // namespace augem::perf
