#include "perf/report.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace augem::perf {
namespace {

BenchRow make_row(const std::string& name, double gflops, double rel_noise,
                  long m = 100, long n = 100, long k = 100) {
  BenchRow r;
  r.name = name;
  r.m = m;
  r.n = n;
  r.k = k;
  r.gflops = gflops;
  r.gflops_lo = gflops * (1.0 - rel_noise);
  r.gflops_hi = gflops * (1.0 + rel_noise);
  r.median_s = 1.0e-3;
  r.mad_s = 1.0e-6;
  r.reps = 9;
  return r;
}

BenchReport make_report(const std::string& machine = "test-machine") {
  BenchReport rep;
  rep.bench = "unit";
  rep.machine = machine;
  rep.git_rev = "deadbee";
  rep.timestamp = "2026-01-01T00:00:00Z";
  rep.peak_gflops = 33.6;
  rep.rows.push_back(make_row("gemm", 30.0, 0.01));
  rep.rows.push_back(make_row("axpy", 9.0, 0.01, 20000, 0, 0));
  return rep;
}

TEST(Report, RowKeyAndNoise) {
  const BenchRow r = make_row("gemm", 30.0, 0.02, 384, 384, 256);
  EXPECT_EQ(r.key(), "gemm/384x384x256/t1");
  EXPECT_NEAR(r.rel_noise(), 0.02, 1e-9);
  BenchRow zero;
  EXPECT_DOUBLE_EQ(zero.rel_noise(), 0.0);
}

TEST(Report, JsonRoundTrip) {
  const BenchReport rep = make_report();
  const auto back = BenchReport::from_json(rep.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->schema, kReportSchemaVersion);
  EXPECT_EQ(back->bench, rep.bench);
  EXPECT_EQ(back->machine, rep.machine);
  EXPECT_EQ(back->git_rev, rep.git_rev);
  EXPECT_EQ(back->timestamp, rep.timestamp);
  EXPECT_DOUBLE_EQ(back->peak_gflops, rep.peak_gflops);
  ASSERT_EQ(back->rows.size(), rep.rows.size());
  for (std::size_t i = 0; i < rep.rows.size(); ++i) {
    EXPECT_EQ(back->rows[i].key(), rep.rows[i].key());
    EXPECT_DOUBLE_EQ(back->rows[i].gflops, rep.rows[i].gflops);
    EXPECT_DOUBLE_EQ(back->rows[i].gflops_lo, rep.rows[i].gflops_lo);
    EXPECT_DOUBLE_EQ(back->rows[i].gflops_hi, rep.rows[i].gflops_hi);
    EXPECT_EQ(back->rows[i].reps, rep.rows[i].reps);
  }
}

TEST(Report, RejectsWrongSchema) {
  Json j = make_report().to_json();
  j["schema"] = Json(kReportSchemaVersion + 1);
  EXPECT_FALSE(BenchReport::from_json(j).has_value());
}

TEST(Report, WriteAndLoad) {
  char tmpl[] = "/tmp/augem_report_test_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const BenchReport rep = make_report();
  const std::string path = write_report(rep, dir);
  EXPECT_EQ(path, dir + "/BENCH_unit.json");
  const auto back = load_report(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->machine, rep.machine);
  EXPECT_FALSE(load_report(dir + "/nonexistent.json").has_value());
  std::remove(path.c_str());
  ::rmdir(dir.c_str());
}

TEST(Diff, UnchangedWithinThresholdPlusNoise) {
  const BenchReport base = make_report();
  BenchReport cur = make_report();
  // -6% on gemm with 1%+1% noise and a 5% threshold: inside the 7% bar.
  cur.rows[0] = make_row("gemm", 30.0 * 0.94, 0.01);
  const DiffResult d = diff_reports(base, cur);
  ASSERT_EQ(d.rows.size(), 2u);
  EXPECT_EQ(d.rows[0].verdict, RowVerdict::kUnchanged);
  EXPECT_FALSE(d.any_regression());
}

TEST(Diff, RegressionBeyondPooledBar) {
  const BenchReport base = make_report();
  BenchReport cur = make_report();
  cur.rows[0] = make_row("gemm", 15.0, 0.01);  // 2x slowdown
  const DiffResult d = diff_reports(base, cur);
  EXPECT_EQ(d.rows[0].verdict, RowVerdict::kRegressed);
  EXPECT_NEAR(d.rows[0].delta_rel, -0.5, 1e-9);
  EXPECT_TRUE(d.any_regression());
  EXPECT_NE(d.to_string().find("regressed"), std::string::npos);
}

TEST(Diff, ImprovementAndNoiseWidensBar) {
  const BenchReport base = make_report();
  BenchReport cur = make_report();
  cur.rows[0] = make_row("gemm", 33.0, 0.01);  // +10% beyond the 7% bar
  EXPECT_EQ(diff_reports(base, cur).rows[0].verdict, RowVerdict::kImproved);
  // Same +10% under massive measurement noise: not a credible change.
  cur.rows[0] = make_row("gemm", 33.0, 0.20);
  EXPECT_EQ(diff_reports(base, cur).rows[0].verdict, RowVerdict::kUnchanged);
}

TEST(Diff, NewAndMissingRows) {
  const BenchReport base = make_report();
  BenchReport cur = make_report();
  cur.rows[1] = make_row("dot", 13.0, 0.01, 20000, 0, 0);
  const DiffResult d = diff_reports(base, cur);
  ASSERT_EQ(d.rows.size(), 3u);  // gemm joined, dot new, axpy missing
  EXPECT_EQ(d.rows[1].verdict, RowVerdict::kNew);
  EXPECT_EQ(d.rows[2].verdict, RowVerdict::kMissing);
  EXPECT_FALSE(d.any_regression());  // new/missing never fail the gate
}

TEST(Diff, MachineMismatchIsNotComparable) {
  const BenchReport base = make_report("machine-a");
  const BenchReport cur = make_report("machine-b");
  const DiffResult d = diff_reports(base, cur);
  EXPECT_TRUE(d.machine_mismatch);
  EXPECT_FALSE(d.comparable());
  EXPECT_TRUE(d.rows.empty());

  DiffOptions options;
  options.require_same_machine = false;
  EXPECT_TRUE(diff_reports(base, cur, options).comparable());
}

TEST(Diff, CustomThreshold) {
  const BenchReport base = make_report();
  BenchReport cur = make_report();
  cur.rows[0] = make_row("gemm", 30.0 * 0.90, 0.01);  // -10%
  DiffOptions loose;
  loose.threshold = 0.5;
  EXPECT_EQ(diff_reports(base, cur, loose).rows[0].verdict,
            RowVerdict::kUnchanged);
  DiffOptions tight;
  tight.threshold = 0.05;
  EXPECT_EQ(diff_reports(base, cur, tight).rows[0].verdict,
            RowVerdict::kRegressed);
}

TEST(Report, MakeHostReportHasIdentity) {
  const BenchReport rep = make_host_report("x");
  EXPECT_EQ(rep.bench, "x");
  EXPECT_EQ(rep.schema, kReportSchemaVersion);
  EXPECT_FALSE(rep.machine.empty());
  EXPECT_FALSE(rep.git_rev.empty());
  EXPECT_NE(rep.timestamp.find('T'), std::string::npos);
  EXPECT_EQ(rep.file_name(), "BENCH_x.json");
}

}  // namespace
}  // namespace augem::perf
