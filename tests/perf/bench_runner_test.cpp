#include "perf/bench_runner.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "perf/clock.hpp"
#include "support/error.hpp"

namespace augem::perf {
namespace {

/// Keeps AUGEM_BENCH_REPS out of the adaptive-mode tests and restores the
/// caller's value afterwards (the test runner itself may be under a smoke
/// harness that sets it).
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) saved_ = v;
    ::unsetenv(name);
  }
  ~EnvGuard() {
    if (saved_.empty())
      ::unsetenv(name_);
    else
      ::setenv(name_, saved_.c_str(), 1);
  }

 private:
  const char* name_;
  std::string saved_;
};

RunnerOptions quiet_options() {
  RunnerOptions o;  // deliberately NOT from_env: deterministic budgets
  o.min_reps = 5;
  o.max_reps = 12;
  o.max_seconds = 5.0;
  o.check_frequency = false;  // the probe adds ~2ms/run for no test value
  return o;
}

TEST(BenchRunner, RespectsRepBudgets) {
  EnvGuard guard("AUGEM_BENCH_REPS");
  RunnerOptions o = quiet_options();
  o.target_rel_ci = 0.0;  // unreachable: must stop at max_reps exactly
  const Measurement m = BenchRunner(o).run(0.0, [] { spin_fpu(1e-5); });
  EXPECT_EQ(static_cast<int>(m.samples_s.size()), o.max_reps);
  EXPECT_FALSE(m.hit_target_ci);
  EXPECT_GE(m.warmup_runs, o.warmup_min_reps);
  EXPECT_LE(m.warmup_runs, o.warmup_max_reps);
}

TEST(BenchRunner, StopsEarlyWhenCiConverges) {
  EnvGuard guard("AUGEM_BENCH_REPS");
  RunnerOptions o = quiet_options();
  o.target_rel_ci = 1e9;  // any CI qualifies: must stop at min_reps
  const Measurement m = BenchRunner(o).run(0.0, [] { spin_fpu(1e-5); });
  EXPECT_EQ(static_cast<int>(m.samples_s.size()), o.min_reps);
  EXPECT_TRUE(m.hit_target_ci);
}

TEST(BenchRunner, GflopsFromMedianAndCiEdges) {
  EnvGuard guard("AUGEM_BENCH_REPS");
  const Measurement m =
      BenchRunner(quiet_options()).run(1.0e6, [] { spin_fpu(1e-4); });
  ASSERT_GT(m.median_s(), 0.0);
  EXPECT_NEAR(m.gflops(), 1.0e6 / m.median_s() / 1e9, 1e-9);
  // lo pairs with the slow CI edge, hi with the fast edge.
  EXPECT_LE(m.gflops_lo(), m.gflops());
  EXPECT_GE(m.gflops_hi(), m.gflops());
  EXPECT_NEAR(m.mflops(), m.gflops() * 1000.0, 1e-9);
}

TEST(BenchRunner, FixedRepEnvModeOverridesBudgets) {
  EnvGuard guard("AUGEM_BENCH_REPS");
  ::setenv("AUGEM_BENCH_REPS", "3", 1);
  const RunnerOptions o = RunnerOptions::from_env();
  EXPECT_EQ(o.min_reps, 3);
  EXPECT_EQ(o.max_reps, 3);
  EXPECT_EQ(o.warmup_max_reps, 1);
  EXPECT_FALSE(o.check_frequency);

  const Measurement m = BenchRunner(o).run(0.0, [] { spin_fpu(1e-5); });
  EXPECT_EQ(m.samples_s.size(), 3u);
  EXPECT_EQ(m.warmup_runs, 1);
  // No probe ran, so the measurement cannot be flagged unstable.
  EXPECT_TRUE(m.frequency_stable);
  EXPECT_DOUBLE_EQ(m.freq_drift, 0.0);
}

TEST(BenchRunner, FromEnvIgnoresInvalidValues) {
  EnvGuard guard("AUGEM_BENCH_REPS");
  ::setenv("AUGEM_BENCH_REPS", "0", 1);
  EXPECT_EQ(RunnerOptions::from_env().min_reps, RunnerOptions{}.min_reps);
  ::setenv("AUGEM_BENCH_REPS", "nope", 1);
  EXPECT_EQ(RunnerOptions::from_env().max_reps, RunnerOptions{}.max_reps);
}

TEST(BenchRunner, RejectsNonsenseBudgets) {
  RunnerOptions o;
  o.min_reps = 0;
  EXPECT_THROW(BenchRunner{o}, Error);
  o.min_reps = 10;
  o.max_reps = 5;
  EXPECT_THROW(BenchRunner{o}, Error);
}

TEST(Clock, StopwatchAndTimeCallAreMonotonic) {
  Stopwatch sw;
  spin_fpu(1e-4);
  const double s = sw.elapsed_s();
  EXPECT_GT(s, 0.0);
  EXPECT_GT(time_call([] { spin_fpu(1e-4); }), 0.0);
  EXPECT_GT(monotonic_now_s(), 0.0);
}

}  // namespace
}  // namespace augem::perf
