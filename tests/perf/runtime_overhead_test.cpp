// The perf-harness contract applied to the kernel runtime: a DGEMM served
// through RuntimeBlas is measured cold (first call pays tuning + assembly +
// caching) and warm (code-cache hits only) through BenchRunner, and the
// warm per-call cost must be a small fraction of the cold one. The bounds
// are deliberately generous — this is a functional guard against the
// dispatch path accidentally re-tuning or re-assembling per call, not a
// microbenchmark (bench/bench_dispatch_overhead.cpp is that).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "perf/bench_runner.hpp"
#include "perf/clock.hpp"
#include "runtime/dispatch.hpp"
#include "runtime/runtime_blas.hpp"
#include "support/rng.hpp"

namespace augem::perf {
namespace {

class RuntimeOverheadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/augem_perf_runtime_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    runtime::TuningDatabase(dir_).purge();
    ::rmdir(dir_.c_str());
  }

  runtime::RuntimeConfig config() const {
    runtime::RuntimeConfig cfg;
    cfg.cache_dir = dir_;
    cfg.use_persistent = true;
    tuning::TuneWorkload w;  // tiny tuning workload: CI-speed cold start
    w.mc = 32;
    w.nc = 32;
    w.kc = 64;
    w.vec_len = 2048;
    w.reps = 1;
    cfg.workload_override = w;
    return cfg;
  }

  std::string dir_;
};

TEST_F(RuntimeOverheadTest, WarmDispatchCostIsFarBelowColdResolve) {
  runtime::KernelRuntime rt(config());
  auto lib = runtime::make_runtime_blas(rt);

  const blas::index_t m = 64, n = 64, k = 64;
  Rng rng(11);
  std::vector<double> a(static_cast<std::size_t>(m * k));
  std::vector<double> b(static_cast<std::size_t>(k * n));
  std::vector<double> c(static_cast<std::size_t>(m * n));
  for (double& v : a) v = rng.uniform(-1.0, 1.0);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);

  auto call = [&] {
    lib->gemm(blas::Trans::kNo, blas::Trans::kNo, m, n, k, 1.0, a.data(), m,
              b.data(), k, 0.0, c.data(), m);
  };

  // Cold: the very first call tunes, generates, assembles and stores.
  const double cold_s = time_call(call);
  ASSERT_GT(cold_s, 0.0);
  EXPECT_GE(rt.counters().tuner_runs, 1u);

  // Warm: steady-state calls through the full dispatch path, measured with
  // the same harness every bench uses.
  RunnerOptions o;
  o.min_reps = 5;
  o.max_reps = 20;
  o.max_seconds = 2.0;
  o.check_frequency = false;
  const Measurement warm = BenchRunner(o).run(0.0, call);
  ASSERT_GT(warm.median_s(), 0.0);

  // A warm call must not re-enter the tuner and must cost a small fraction
  // of the cold resolve (generous 20% bound: cold includes an empirical
  // tuning run, JIT assembly and database I/O; a warm call is a hash-map
  // hit plus the kernel itself).
  EXPECT_EQ(rt.counters().tuner_runs, 1u)
      << "steady-state dgemm calls re-entered the tuner";
  EXPECT_LT(warm.median_s(), 0.20 * cold_s)
      << "warm dispatch cost " << warm.median_s() << "s vs cold " << cold_s
      << "s — the dispatch path is doing per-call work it should cache";
}

}  // namespace
}  // namespace augem::perf
