// End-to-end semantic tests: full pipeline → machine IR → VM, checked
// against the reference oracle, across kernels × ISAs × strategies ×
// tile parameters. FMA4 — which the host cannot execute — is covered here.

#include <gtest/gtest.h>

#include "../common/genrun.hpp"

namespace augem::testing {
namespace {

using frontend::BLayout;
using frontend::KernelKind;
using opt::OptConfig;
using opt::RegAllocPolicy;
using opt::VecStrategy;
using transform::CGenParams;

OptConfig cfg(Isa isa, VecStrategy s = VecStrategy::kAuto) {
  OptConfig c;
  c.isa = isa;
  c.strategy = s;
  return c;
}

TEST(CodegenVm, DotMinimalScalar) {
  CGenParams p;
  p.unroll = 1;
  auto g = build_kernel(KernelKind::kDot, p, cfg(Isa::kSse2));
  run_dot(g, Runner::kVm, 5);
}

TEST(CodegenVm, DotUnrolledEveryIsa) {
  CGenParams p;
  p.unroll = 8;
  for (Isa isa : {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4}) {
    SCOPED_TRACE(isa_name(isa));
    auto g = build_kernel(KernelKind::kDot, p, cfg(isa));
    run_dot(g, Runner::kVm, 37);
    run_dot(g, Runner::kVm, 8);
    run_dot(g, Runner::kVm, 3);   // remainder only
    run_dot(g, Runner::kVm, 0);   // empty
  }
}

TEST(CodegenVm, AxpyEveryIsa) {
  CGenParams p;
  p.unroll = 8;
  for (Isa isa : {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4}) {
    SCOPED_TRACE(isa_name(isa));
    auto g = build_kernel(KernelKind::kAxpy, p, cfg(isa));
    run_axpy(g, Runner::kVm, 29);
    run_axpy(g, Runner::kVm, 7);
    run_axpy(g, Runner::kVm, 0);
  }
}

TEST(CodegenVm, GemvEveryIsa) {
  CGenParams p;
  p.unroll = 8;
  for (Isa isa : {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4}) {
    SCOPED_TRACE(isa_name(isa));
    auto g = build_kernel(KernelKind::kGemv, p, cfg(isa));
    run_gemv(g, Runner::kVm, 17, 5, 19);
    run_gemv(g, Runner::kVm, 8, 3, 8);
    run_gemv(g, Runner::kVm, 3, 2, 5);
  }
}

TEST(CodegenVm, GemmMinimalScalar) {
  CGenParams p;
  p.mr = 1;
  p.nr = 1;
  p.ku = 1;
  auto g = build_kernel(KernelKind::kGemm, p, cfg(Isa::kSse2));
  run_gemm(g, Runner::kVm, 2, 2, 3, 2, BLayout::kRowPanel);
}

struct GemmVmCase {
  Isa isa;
  VecStrategy strategy;
  int mr, nr, ku;
  BLayout layout;
};

class GemmVm : public ::testing::TestWithParam<GemmVmCase> {};

TEST_P(GemmVm, MatchesReference) {
  const GemmVmCase c = GetParam();
  CGenParams p;
  p.mr = c.mr;
  p.nr = c.nr;
  p.ku = c.ku;
  auto g = build_kernel(KernelKind::kGemm, p, cfg(c.isa, c.strategy), c.layout);
  run_gemm(g, Runner::kVm, 2 * c.mr, 2 * c.nr, 7, 2 * c.mr + 3, c.layout);
  run_gemm(g, Runner::kVm, c.mr, c.nr, 1, c.mr, c.layout);
}

INSTANTIATE_TEST_SUITE_P(
    IsaStrategySweep, GemmVm,
    ::testing::Values(
        GemmVmCase{Isa::kSse2, VecStrategy::kVdup, 2, 2, 1, BLayout::kRowPanel},
        GemmVmCase{Isa::kSse2, VecStrategy::kShuf, 2, 2, 1, BLayout::kRowPanel},
        GemmVmCase{Isa::kSse2, VecStrategy::kVdup, 4, 2, 2, BLayout::kRowPanel},
        GemmVmCase{Isa::kAvx, VecStrategy::kVdup, 4, 4, 1, BLayout::kRowPanel},
        GemmVmCase{Isa::kAvx, VecStrategy::kShuf, 4, 4, 1, BLayout::kRowPanel},
        GemmVmCase{Isa::kAvx, VecStrategy::kVdup, 8, 2, 2, BLayout::kRowPanel},
        GemmVmCase{Isa::kFma3, VecStrategy::kVdup, 4, 4, 1, BLayout::kRowPanel},
        GemmVmCase{Isa::kFma3, VecStrategy::kShuf, 4, 4, 1, BLayout::kRowPanel},
        GemmVmCase{Isa::kFma3, VecStrategy::kVdup, 8, 4, 1, BLayout::kRowPanel},
        GemmVmCase{Isa::kFma4, VecStrategy::kVdup, 4, 4, 1, BLayout::kRowPanel},
        GemmVmCase{Isa::kFma4, VecStrategy::kShuf, 4, 4, 1, BLayout::kRowPanel},
        GemmVmCase{Isa::kFma4, VecStrategy::kVdup, 8, 2, 2, BLayout::kRowPanel},
        GemmVmCase{Isa::kAvx, VecStrategy::kVdup, 4, 2, 1, BLayout::kColMajor},
        GemmVmCase{Isa::kFma3, VecStrategy::kVdup, 8, 2, 1, BLayout::kColMajor},
        GemmVmCase{Isa::kSse2, VecStrategy::kScalar, 2, 2, 1, BLayout::kRowPanel},
        GemmVmCase{Isa::kFma3, VecStrategy::kScalar, 2, 2, 1, BLayout::kRowPanel}));

TEST(CodegenVm, SinglePoolPolicyStillCorrect) {
  CGenParams p;
  p.mr = 4;
  p.nr = 2;
  OptConfig c = cfg(Isa::kFma3);
  c.regalloc = RegAllocPolicy::kSinglePool;
  auto g = build_kernel(KernelKind::kGemm, p, c);
  run_gemm(g, Runner::kVm, 8, 4, 5, 9, BLayout::kRowPanel);
}

TEST(CodegenVm, SchedulingPreservesSemantics) {
  CGenParams p;
  p.mr = 4;
  p.nr = 4;
  for (bool sched : {false, true}) {
    OptConfig c = cfg(Isa::kFma3);
    c.schedule = sched;
    auto g = build_kernel(KernelKind::kGemm, p, c);
    run_gemm(g, Runner::kVm, 8, 8, 6, 11, BLayout::kRowPanel);
  }
}

TEST(CodegenVm, PrefetchDoesNotChangeResults) {
  CGenParams p;
  p.mr = 4;
  p.nr = 2;
  p.prefetch.enabled = true;
  p.prefetch.distance = 8;
  auto g = build_kernel(KernelKind::kGemm, p, cfg(Isa::kFma3));
  run_gemm(g, Runner::kVm, 8, 4, 9, 8, BLayout::kRowPanel);
}

}  // namespace
}  // namespace augem::testing
