// Structural checks on the generated assembly text: ISA-specific
// instructions appear exactly where the mapping rules (paper Tables 1-4)
// say they should.

#include <gtest/gtest.h>

#include "../common/genrun.hpp"

namespace augem::testing {
namespace {

using frontend::BLayout;
using frontend::KernelKind;
using opt::OptConfig;
using opt::VecStrategy;
using transform::CGenParams;

std::string gemm_asm(Isa isa, VecStrategy s, int mr = 4, int nr = 4) {
  CGenParams p;
  p.mr = mr;
  p.nr = nr;
  OptConfig c;
  c.isa = isa;
  c.strategy = s;
  return build_kernel(KernelKind::kGemm, p, c).asm_text;
}

TEST(CodegenText, Fma3KernelUsesFusedMultiplyAdd) {
  const std::string s = gemm_asm(Isa::kFma3, VecStrategy::kVdup);
  EXPECT_NE(s.find("vfmadd231pd"), std::string::npos);
  EXPECT_EQ(s.find("vmulpd"), std::string::npos);  // fused: no discrete mul
}

TEST(CodegenText, Fma4KernelUsesFourOperandFma) {
  const std::string s = gemm_asm(Isa::kFma4, VecStrategy::kVdup);
  EXPECT_NE(s.find("vfmaddpd"), std::string::npos);
  EXPECT_EQ(s.find("vfmadd231pd"), std::string::npos);
}

TEST(CodegenText, AvxKernelUsesDiscreteMulAdd) {
  const std::string s = gemm_asm(Isa::kAvx, VecStrategy::kVdup);
  EXPECT_NE(s.find("vmulpd"), std::string::npos);
  EXPECT_NE(s.find("vaddpd"), std::string::npos);
  EXPECT_EQ(s.find("fmadd"), std::string::npos);
  EXPECT_NE(s.find("vbroadcastsd"), std::string::npos);  // Vdup on 256-bit
  EXPECT_NE(s.find("%ymm"), std::string::npos);
}

TEST(CodegenText, SseKernelIsTwoOperandXmm) {
  const std::string s = gemm_asm(Isa::kSse2, VecStrategy::kVdup, 2, 2);
  EXPECT_NE(s.find("mulpd"), std::string::npos);
  EXPECT_NE(s.find("movddup"), std::string::npos);  // Vdup on 128-bit
  EXPECT_EQ(s.find("%ymm"), std::string::npos);     // strictly 128-bit
  EXPECT_EQ(s.find("vmulpd"), std::string::npos);   // no VEX encodings
}

TEST(CodegenText, ShufStrategyEmitsShuffles) {
  const std::string avx = gemm_asm(Isa::kAvx, VecStrategy::kShuf);
  EXPECT_NE(avx.find("vshufpd"), std::string::npos);
  EXPECT_NE(avx.find("vperm2f128"), std::string::npos);
  EXPECT_NE(avx.find("vblendpd"), std::string::npos);
  EXPECT_EQ(avx.find("vbroadcastsd"), std::string::npos);  // no Vdup

  const std::string sse = gemm_asm(Isa::kSse2, VecStrategy::kShuf, 2, 2);
  EXPECT_NE(sse.find("shufpd"), std::string::npos);
  EXPECT_EQ(sse.find("movddup"), std::string::npos);
}

TEST(CodegenText, VdupStrategyHasNoShuffles) {
  const std::string s = gemm_asm(Isa::kFma3, VecStrategy::kVdup);
  EXPECT_EQ(s.find("vshufpd"), std::string::npos);
  EXPECT_EQ(s.find("vperm2f128"), std::string::npos);
}

TEST(CodegenText, PrefetchInstructionsAppear) {
  CGenParams p;
  p.mr = 4;
  p.nr = 2;
  p.prefetch.enabled = true;
  OptConfig c;
  c.isa = Isa::kFma3;
  const std::string s =
      build_kernel(KernelKind::kGemm, p, c).asm_text;
  EXPECT_NE(s.find("prefetcht0"), std::string::npos);
}

TEST(CodegenText, RegionCommentsDocumentTemplates) {
  const std::string s = gemm_asm(Isa::kFma3, VecStrategy::kVdup);
  EXPECT_NE(s.find("mmUnrolledCOMP"), std::string::npos);
  EXPECT_NE(s.find("mmUnrolledSTORE"), std::string::npos);
  EXPECT_NE(s.find("accINIT"), std::string::npos);
}

TEST(CodegenText, DotReturnsInXmm0) {
  CGenParams p;
  p.unroll = 8;
  OptConfig c;
  c.isa = Isa::kFma3;
  const auto g = build_kernel(KernelKind::kDot, p, c);
  // A reduction sequence must appear before ret.
  EXPECT_NE(g.asm_text.find("vextractf128"), std::string::npos);
  EXPECT_NE(g.asm_text.find("ret"), std::string::npos);
}

TEST(CodegenText, CalleeSavedRegistersAreRestored) {
  const auto g = [&] {
    CGenParams p;
    p.mr = 8;
    p.nr = 4;
    OptConfig c;
    c.isa = Isa::kFma3;
    return build_kernel(KernelKind::kGemm, p, c);
  }();
  for (opt::Gpr r : g.saved_gprs) {
    const std::string name = opt::gpr_name(r);
    EXPECT_NE(g.asm_text.find("pushq %" + name), std::string::npos) << name;
    EXPECT_NE(g.asm_text.find("popq %" + name), std::string::npos) << name;
  }
  // Pushes and pops must balance.
  std::size_t pushes = 0, pops = 0, pos = 0;
  while ((pos = g.asm_text.find("pushq", pos)) != std::string::npos) {
    ++pushes;
    ++pos;
  }
  pos = 0;
  while ((pos = g.asm_text.find("popq", pos)) != std::string::npos) {
    ++pops;
    ++pos;
  }
  EXPECT_EQ(pushes, pops);
}

TEST(CodegenText, AxpyBroadcastsAlpha) {
  CGenParams p;
  p.unroll = 8;
  OptConfig c;
  c.isa = Isa::kAvx;
  const std::string s = build_kernel(KernelKind::kAxpy, p, c).asm_text;
  // alpha arrives in xmm0, is spilled to the frame and broadcast.
  EXPECT_NE(s.find("vmovsd %xmm0"), std::string::npos);
  EXPECT_NE(s.find("vbroadcastsd"), std::string::npos);
}

}  // namespace
}  // namespace augem::testing
