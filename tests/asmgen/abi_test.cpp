#include "asmgen/abi.hpp"

#include <gtest/gtest.h>

#include "frontend/kernels.hpp"

namespace augem::asmgen {
namespace {

using opt::Gpr;
using opt::Vr;

TEST(Abi, GemmSeventhArgOnStack) {
  const auto args = classify_arguments(frontend::make_gemm_kernel());
  ASSERT_EQ(args.size(), 7u);
  EXPECT_EQ(args[0].gpr, Gpr::rdi);  // mc
  EXPECT_EQ(args[1].gpr, Gpr::rsi);  // nc
  EXPECT_EQ(args[2].gpr, Gpr::rdx);  // kc
  EXPECT_EQ(args[3].gpr, Gpr::rcx);  // A
  EXPECT_EQ(args[4].gpr, Gpr::r8);   // B
  EXPECT_EQ(args[5].gpr, Gpr::r9);   // C
  EXPECT_FALSE(args[6].in_register);  // ldc
  EXPECT_EQ(args[6].entry_stack_offset, 8);
}

TEST(Abi, AxpyDoubleGoesToXmm0) {
  const auto args = classify_arguments(frontend::make_axpy_kernel());
  ASSERT_EQ(args.size(), 4u);
  EXPECT_EQ(args[0].gpr, Gpr::rdi);  // n
  EXPECT_EQ(args[1].vr, Vr::v0);     // alpha — SSE class
  EXPECT_EQ(args[2].gpr, Gpr::rsi);  // x — integer class continues
  EXPECT_EQ(args[3].gpr, Gpr::rdx);  // y
}

TEST(Abi, DotAllInRegisters) {
  const auto args = classify_arguments(frontend::make_dot_kernel());
  ASSERT_EQ(args.size(), 3u);
  for (const auto& a : args) EXPECT_TRUE(a.in_register);
}

TEST(Abi, GemvSixIntegerArgs) {
  const auto args = classify_arguments(frontend::make_gemv_kernel());
  ASSERT_EQ(args.size(), 6u);
  EXPECT_EQ(args[5].gpr, Gpr::r9);
}

}  // namespace
}  // namespace augem::asmgen
