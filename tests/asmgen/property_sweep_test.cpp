// Randomized property sweep: the full pipeline (transform → match → plan →
// optimize → assemble) must produce semantically correct machine code for
// *random* parameter combinations, ISAs and problem sizes — executed in the
// VM against the reference oracle. Configurations the planner rejects
// (register budget, Shuf shape) are skipped, exactly as the tuner does.

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "../common/genrun.hpp"

namespace augem::testing {
namespace {

using frontend::BLayout;
using frontend::KernelKind;
using opt::OptConfig;
using opt::VecStrategy;
using transform::CGenParams;

constexpr Isa kIsas[] = {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4};
constexpr VecStrategy kStrategies[] = {VecStrategy::kAuto, VecStrategy::kVdup,
                                       VecStrategy::kShuf,
                                       VecStrategy::kScalar};

class PropertySweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PropertySweep, RandomGemmConfig) {
  Rng rng(GetParam() * 2654435761u + 17);
  CGenParams p;
  p.mr = static_cast<int>(rng.uniform_int(1, 4)) * 2;       // 2..8
  p.nr = 1 << rng.uniform_int(0, 2);                        // 1, 2, 4
  p.ku = 1 << rng.uniform_int(0, 2);                        // 1, 2, 4
  p.prefetch.enabled = rng.uniform_int(0, 1) == 1;
  p.prefetch.distance = static_cast<int>(rng.uniform_int(1, 32));
  OptConfig cfg;
  cfg.isa = kIsas[rng.uniform_int(0, 3)];
  cfg.strategy = kStrategies[rng.uniform_int(0, 3)];
  cfg.schedule = rng.uniform_int(0, 1) == 1;
  cfg.regalloc = rng.uniform_int(0, 1) == 1
                     ? opt::RegAllocPolicy::kPerArrayQueues
                     : opt::RegAllocPolicy::kSinglePool;
  const BLayout layout =
      rng.uniform_int(0, 3) == 0 ? BLayout::kColMajor : BLayout::kRowPanel;

  SCOPED_TRACE(std::string(isa_name(cfg.isa)) + " " +
               opt::vec_strategy_name(cfg.strategy) + " " + p.to_string());
  try {
    auto g = build_kernel(KernelKind::kGemm, p, cfg, layout);
    const std::int64_t mc = p.mr * rng.uniform_int(1, 3);
    const std::int64_t nc = p.nr * rng.uniform_int(1, 3);
    const std::int64_t kc = rng.uniform_int(1, 12);
    const std::int64_t ldc = mc + rng.uniform_int(0, 5);
    run_gemm(g, Runner::kVm, mc, nc, kc, ldc, layout, GetParam());
  } catch (const Error&) {
    // Planner rejected the point (register budget / Shuf shape): valid.
  }
}

TEST_P(PropertySweep, RandomLevel1Config) {
  Rng rng(GetParam() * 40503u + 5);
  CGenParams p;
  p.unroll = static_cast<int>(rng.uniform_int(1, 32));
  p.prefetch.enabled = rng.uniform_int(0, 1) == 1;
  OptConfig cfg;
  cfg.isa = kIsas[rng.uniform_int(0, 3)];
  cfg.schedule = rng.uniform_int(0, 1) == 1;

  const std::int64_t n = rng.uniform_int(0, 150);
  SCOPED_TRACE(std::string(isa_name(cfg.isa)) + " unroll=" +
               std::to_string(p.unroll) + " n=" + std::to_string(n));
  switch (GetParam() % 3) {
    case 0: {
      auto g = build_kernel(KernelKind::kAxpy, p, cfg);
      run_axpy(g, Runner::kVm, n, GetParam());
      break;
    }
    case 1: {
      auto g = build_kernel(KernelKind::kDot, p, cfg);
      run_dot(g, Runner::kVm, n, GetParam());
      break;
    }
    default: {
      auto g = build_kernel(KernelKind::kGemv, p, cfg);
      const std::int64_t m = rng.uniform_int(1, 40);
      const std::int64_t cols = rng.uniform_int(1, 8);
      run_gemv(g, Runner::kVm, m, cols, m + rng.uniform_int(0, 3), GetParam());
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep, ::testing::Range(0u, 24u));

}  // namespace
}  // namespace augem::testing
