#include "asmgen/printer.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace augem::asmgen {
namespace {

using namespace augem::opt;

TEST(Printer, LoadsByWidth) {
  EXPECT_EQ(print_inst(vload(Vr::v1, mem_bd(Gpr::rdi, 16), 1, false)),
            "movsd 16(%rdi), %xmm1");
  EXPECT_EQ(print_inst(vload(Vr::v1, mem_bd(Gpr::rdi, 16), 2, false)),
            "movupd 16(%rdi), %xmm1");
  EXPECT_EQ(print_inst(vload(Vr::v1, mem_bd(Gpr::rdi, 0), 4, true)),
            "vmovupd (%rdi), %ymm1");
}

TEST(Printer, SseTwoOperandMulRequiresDstEqualsSrc1) {
  EXPECT_EQ(print_inst(vmul(Vr::v2, Vr::v2, Vr::v3, 2, false)),
            "mulpd %xmm3, %xmm2");
  EXPECT_THROW(print_inst(vmul(Vr::v2, Vr::v1, Vr::v3, 2, false)), Error);
}

TEST(Printer, AvxThreeOperand) {
  EXPECT_EQ(print_inst(vmul(Vr::v2, Vr::v0, Vr::v1, 4, true)),
            "vmulpd %ymm1, %ymm0, %ymm2");
  EXPECT_EQ(print_inst(vadd(Vr::v5, Vr::v5, Vr::v6, 1, true)),
            "vaddsd %xmm6, %xmm5, %xmm5");
}

TEST(Printer, FmaForms) {
  // FMA3: acc = a*b + acc.
  EXPECT_EQ(print_inst(vfma231(Vr::v8, Vr::v0, Vr::v1, 4)),
            "vfmadd231pd %ymm1, %ymm0, %ymm8");
  // FMA4: four distinct operands allowed.
  EXPECT_EQ(print_inst(vfma4(Vr::v8, Vr::v0, Vr::v1, Vr::v8, 4)),
            "vfmaddpd %ymm8, %ymm1, %ymm0, %ymm8");
}

TEST(Printer, BroadcastByIsaWidth) {
  EXPECT_EQ(print_inst(vbroadcast(Vr::v4, mem_bd(Gpr::r8, 8), 2, false)),
            "movddup 8(%r8), %xmm4");
  EXPECT_EQ(print_inst(vbroadcast(Vr::v4, mem_bd(Gpr::r8, 8), 4, true)),
            "vbroadcastsd 8(%r8), %ymm4");
}

TEST(Printer, ShufflePermuteBlend) {
  EXPECT_EQ(print_inst(vshuf(Vr::v1, Vr::v2, Vr::v3, 5, 4, true)),
            "vshufpd $5, %ymm3, %ymm2, %ymm1");
  EXPECT_EQ(print_inst(vperm128(Vr::v1, Vr::v2, Vr::v2, 1)),
            "vperm2f128 $1, %ymm2, %ymm2, %ymm1");
  EXPECT_EQ(print_inst(vblend(Vr::v1, Vr::v2, Vr::v3, 10, 4, true)),
            "vblendpd $10, %ymm3, %ymm2, %ymm1");
  EXPECT_EQ(print_inst(vextract_high(Vr::v1, Vr::v9)),
            "vextractf128 $1, %ymm9, %xmm1");
}

TEST(Printer, ZeroIdiom) {
  EXPECT_EQ(print_inst(vzero(Vr::v7, 2, false)), "xorpd %xmm7, %xmm7");
  EXPECT_EQ(print_inst(vzero(Vr::v7, 4, true)),
            "vxorpd %ymm7, %ymm7, %ymm7");
}

TEST(Printer, IntegerAndControl) {
  EXPECT_EQ(print_inst(imov_imm(Gpr::rax, 42)), "movabsq $42, %rax");
  EXPECT_EQ(print_inst(iadd(Gpr::rbx, Gpr::rcx)), "addq %rcx, %rbx");
  EXPECT_EQ(print_inst(imul_imm(Gpr::rdx, Gpr::rsi, 8)),
            "imulq $8, %rsi, %rdx");
  EXPECT_EQ(print_inst(ishl_imm(Gpr::r10, 3)), "salq $3, %r10");
  EXPECT_EQ(print_inst(lea(Gpr::rax, mem_bis(Gpr::rdi, Gpr::r10, 8, 0))),
            "leaq (%rdi,%r10,8), %rax");
  EXPECT_EQ(print_inst(cmp(Gpr::rax, Gpr::rbx)), "cmpq %rbx, %rax");
  EXPECT_EQ(print_inst(jl(".Lbody")), "jl .Lbody");
  EXPECT_EQ(print_inst(label(".Lbody")), ".Lbody:");
  EXPECT_EQ(print_inst(ret()), "ret");
}

TEST(Printer, PrefetchHints) {
  EXPECT_EQ(print_inst(prefetch(mem_bd(Gpr::rdi, 64), 3)),
            "prefetcht0 64(%rdi)");
  EXPECT_EQ(print_inst(prefetch(mem_bd(Gpr::rdi, 64), 0)),
            "prefetchnta 64(%rdi)");
}

TEST(Printer, FunctionWrapper) {
  MInstList insts;
  insts.push_back(ret());
  const std::string text = print_function("my_kernel", insts);
  EXPECT_NE(text.find(".globl my_kernel"), std::string::npos);
  EXPECT_NE(text.find("my_kernel:"), std::string::npos);
  EXPECT_NE(text.find("\tret"), std::string::npos);
  EXPECT_NE(text.find(".size my_kernel"), std::string::npos);
}

TEST(Printer, CommentsRenderAsHash) {
  EXPECT_EQ(print_inst(comment("hello")), "# hello");
}

}  // namespace
}  // namespace augem::asmgen
