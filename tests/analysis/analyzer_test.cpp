// Tests for the machine-IR static analyzer: CFG construction, dataflow
// passes, and the symbolic memory-bounds prover — each negative fixture is a
// hand-built kernel with exactly one seeded defect, asserting the precise
// finding kind the analyzer must emit.

#include "analysis/analyzer.hpp"

#include <gtest/gtest.h>

#include "analysis/cfg.hpp"
#include "asmgen/codegen.hpp"
#include "frontend/kernels.hpp"
#include "ir/affine.hpp"
#include "opt/schedule.hpp"
#include "transform/ckernel.hpp"

namespace augem::analysis {
namespace {

using opt::Gpr;
using opt::MInstList;
using opt::Vr;

bool has_finding(const AnalysisReport& r, Severity sev,
                 const std::string& kind) {
  for (const Finding& f : r.findings)
    if (f.severity == sev && f.kind == kind) return true;
  return false;
}

std::size_t count_kind(const AnalysisReport& r, const std::string& kind) {
  std::size_t n = 0;
  for (const Finding& f : r.findings)
    if (f.kind == kind) ++n;
  return n;
}

/// `void k(long n, const double* x, double* y)` with x and y of extent n.
KernelContract vector_contract() {
  KernelContract c;
  c.args = {{"n", false}, {"x", false}, {"y", false}};
  c.facts.push_back({"n", 1, std::nullopt, std::nullopt});
  c.buffers.push_back({"x", ir::Poly::variable("n"), /*writable=*/false});
  c.buffers.push_back({"y", ir::Poly::variable("n"), /*writable=*/true});
  return c;
}

// ---- CFG ---------------------------------------------------------------

TEST(Cfg, LoopShapeHasBackEdge) {
  MInstList l;
  l.push_back(opt::imov_imm(Gpr::rax, 0));   // b0
  l.push_back(opt::cmp(Gpr::rax, Gpr::rdi));
  l.push_back(opt::jge("end"));
  l.push_back(opt::label("body"));           // b1
  l.push_back(opt::iadd_imm(Gpr::rax, 1));
  l.push_back(opt::cmp(Gpr::rax, Gpr::rdi));
  l.push_back(opt::jl("body"));
  l.push_back(opt::label("end"));            // b2
  l.push_back(opt::ret());

  const Cfg cfg = build_cfg(l);
  ASSERT_EQ(cfg.blocks.size(), 3u);
  // Guard reaches both the body and the exit; the body loops to itself.
  EXPECT_EQ(cfg.blocks[0].succs, (std::vector<std::size_t>{2, 1}));
  EXPECT_EQ(cfg.blocks[1].succs, (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(cfg.blocks[2].succs.empty());
}

// ---- seeded defects ----------------------------------------------------

TEST(Analyzer, OutOfBoundsStoreCaught) {
  // y[n] — one element past the end of the writable buffer.
  MInstList l;
  l.push_back(opt::imov(Gpr::rax, Gpr::rdx));    // rax = y
  l.push_back(opt::imov(Gpr::rcx, Gpr::rdi));    // rcx = n
  l.push_back(opt::ishl_imm(Gpr::rcx, 3));       // rcx = 8n
  l.push_back(opt::iadd(Gpr::rax, Gpr::rcx));    // rax = y + 8n
  l.push_back(opt::vzero(Vr::v0, 1, false));
  l.push_back(opt::fstore(Vr::v0, opt::mem_bd(Gpr::rax, 0), false));
  l.push_back(opt::ret());

  const KernelContract c = vector_contract();
  AnalyzeOptions o;
  o.contract = &c;
  const AnalysisReport r = analyze(l, o);
  EXPECT_TRUE(has_finding(r, Severity::kError, "oob-store"));
}

TEST(Analyzer, StoreToReadOnlyBufferCaught) {
  MInstList l;
  l.push_back(opt::vzero(Vr::v0, 1, false));
  l.push_back(opt::fstore(Vr::v0, opt::mem_bd(Gpr::rsi, 0), false));  // x[0]
  l.push_back(opt::ret());

  const KernelContract c = vector_contract();
  AnalyzeOptions o;
  o.contract = &c;
  const AnalysisReport r = analyze(l, o);
  EXPECT_TRUE(has_finding(r, Severity::kError, "readonly-store"));
}

TEST(Analyzer, DeadVectorStoreCaught) {
  MInstList l;
  l.push_back(opt::vzero(Vr::v0, 2, true));  // live at ret (return value)
  l.push_back(opt::vzero(Vr::v5, 2, true));  // never read again
  l.push_back(opt::ret());

  const AnalysisReport r = analyze(l, {});
  EXPECT_TRUE(has_finding(r, Severity::kWarning, "dead-store"));
  EXPECT_EQ(count_kind(r, "dead-store"), 1u);  // v0 is not flagged
  EXPECT_EQ(r.errors(), 0u);
}

TEST(Analyzer, QueueFalseDependenceCaught) {
  // Reload of a queue register one instruction after a pending use: the
  // write-after-read dependence serializes what the rotation was meant to
  // overlap.
  MInstList l;
  l.push_back(opt::vzero(Vr::v0, 2, true));
  l.push_back(opt::vload(Vr::v1, opt::mem_bd(Gpr::rdi, 0), 2, true));
  l.push_back(opt::vadd(Vr::v0, Vr::v0, Vr::v1, 2, true));
  l.push_back(opt::vload(Vr::v1, opt::mem_bd(Gpr::rdi, 16), 2, true));
  l.push_back(opt::vadd(Vr::v0, Vr::v0, Vr::v1, 2, true));
  l.push_back(opt::ret());

  const AnalysisReport r = analyze(l, {});
  EXPECT_TRUE(has_finding(r, Severity::kWarning, "queue-false-dependence"));
  EXPECT_EQ(r.errors(), 0u);
}

TEST(Analyzer, ReadBeforeWriteOnJumpPathCaught) {
  MInstList l;
  l.push_back(opt::imov_imm(Gpr::rax, 0));
  l.push_back(opt::cmp_imm(Gpr::rax, 5));
  l.push_back(opt::jge("skip"));
  l.push_back(opt::vzero(Vr::v4, 2, true));  // defined only when not taken
  l.push_back(opt::label("skip"));
  l.push_back(opt::vmov(Vr::v0, Vr::v4, 2, true));
  l.push_back(opt::ret());

  const AnalysisReport r = analyze(l, {});
  EXPECT_TRUE(has_finding(r, Severity::kError, "read-uninit-vreg"));
}

TEST(Analyzer, UnprovableAddressIsAnErrorNotSilence) {
  // An access through a pointer the contract knows nothing about must be
  // reported: "no finding" must mean "proved".
  MInstList l;
  l.push_back(opt::imov(Gpr::rax, Gpr::rdi));
  l.push_back(opt::imul(Gpr::rax, Gpr::rax));  // rax = n*n — not a pointer
  l.push_back(opt::fload(Vr::v0, opt::mem_bd(Gpr::rax, 0), false));
  l.push_back(opt::ret());

  const KernelContract c = vector_contract();
  AnalyzeOptions o;
  o.contract = &c;
  const AnalysisReport r = analyze(l, o);
  EXPECT_EQ(r.errors(), 1u);
}

// ---- positive: a hand-built guarded loop proves clean ------------------

TEST(Analyzer, GuardedCopyLoopProvesInBounds) {
  // for (i = 0; i < n; ++i) y[i] = x[i];  in the generator's loop shape.
  MInstList l;
  l.push_back(opt::imov_imm(Gpr::rax, 0));
  l.push_back(opt::cmp(Gpr::rax, Gpr::rdi));
  l.push_back(opt::jge("end"));
  l.push_back(opt::label("body"));
  l.push_back(opt::fload(Vr::v1, opt::mem_bis(Gpr::rsi, Gpr::rax, 8), false));
  l.push_back(opt::fstore(Vr::v1, opt::mem_bis(Gpr::rdx, Gpr::rax, 8), false));
  l.push_back(opt::iadd_imm(Gpr::rax, 1));
  l.push_back(opt::cmp(Gpr::rax, Gpr::rdi));
  l.push_back(opt::jl("body"));
  l.push_back(opt::label("end"));
  l.push_back(opt::vzero(Vr::v0, 1, false));
  l.push_back(opt::ret());

  const KernelContract c = vector_contract();
  AnalyzeOptions o;
  o.contract = &c;
  const AnalysisReport r = analyze(l, o);
  EXPECT_EQ(r.errors(), 0u) << r.to_string(l);
}

TEST(Analyzer, OffByOneInLoopBodyCaught) {
  // Same loop, but reading x[i+1]: the last iteration reads x[n].
  MInstList l;
  l.push_back(opt::imov_imm(Gpr::rax, 0));
  l.push_back(opt::cmp(Gpr::rax, Gpr::rdi));
  l.push_back(opt::jge("end"));
  l.push_back(opt::label("body"));
  l.push_back(
      opt::fload(Vr::v1, opt::mem_bis(Gpr::rsi, Gpr::rax, 8, 8), false));
  l.push_back(opt::fstore(Vr::v1, opt::mem_bis(Gpr::rdx, Gpr::rax, 8), false));
  l.push_back(opt::iadd_imm(Gpr::rax, 1));
  l.push_back(opt::cmp(Gpr::rax, Gpr::rdi));
  l.push_back(opt::jl("body"));
  l.push_back(opt::label("end"));
  l.push_back(opt::vzero(Vr::v0, 1, false));
  l.push_back(opt::ret());

  const KernelContract c = vector_contract();
  AnalyzeOptions o;
  o.contract = &c;
  const AnalysisReport r = analyze(l, o);
  EXPECT_TRUE(has_finding(r, Severity::kError, "oob-load"));
}

// ---- seeded defects survive rescheduling -------------------------------
//
// The port-aware list scheduler reorders within straight-line spans; the
// analyzer is its safety net, so every seeded defect must still be caught
// on the scheduled form of the same kernel — a reorder that hid a bug from
// the analyzer would be a scheduler correctness hole.

TEST(Analyzer, OutOfBoundsStoreStillCaughtAfterReschedule) {
  MInstList l;
  l.push_back(opt::imov(Gpr::rax, Gpr::rdx));
  l.push_back(opt::imov(Gpr::rcx, Gpr::rdi));
  l.push_back(opt::ishl_imm(Gpr::rcx, 3));
  l.push_back(opt::iadd(Gpr::rax, Gpr::rcx));
  l.push_back(opt::vzero(Vr::v0, 1, false));
  l.push_back(opt::fstore(Vr::v0, opt::mem_bd(Gpr::rax, 0), false));
  l.push_back(opt::ret());
  opt::schedule_instructions(l);

  const KernelContract c = vector_contract();
  AnalyzeOptions o;
  o.contract = &c;
  const AnalysisReport r = analyze(l, o);
  EXPECT_TRUE(has_finding(r, Severity::kError, "oob-store"));
}

TEST(Analyzer, ReadBeforeWriteOnJumpPathStillCaughtAfterReschedule) {
  MInstList l;
  l.push_back(opt::imov_imm(Gpr::rax, 0));
  l.push_back(opt::cmp_imm(Gpr::rax, 5));
  l.push_back(opt::jge("skip"));
  l.push_back(opt::vzero(Vr::v4, 2, true));
  l.push_back(opt::label("skip"));
  l.push_back(opt::vmov(Vr::v0, Vr::v4, 2, true));
  l.push_back(opt::ret());
  opt::schedule_instructions(l);

  const AnalysisReport r = analyze(l, {});
  EXPECT_TRUE(has_finding(r, Severity::kError, "read-uninit-vreg"));
}

TEST(Analyzer, OffByOneInLoopBodyStillCaughtAfterReschedule) {
  MInstList l;
  l.push_back(opt::imov_imm(Gpr::rax, 0));
  l.push_back(opt::cmp(Gpr::rax, Gpr::rdi));
  l.push_back(opt::jge("end"));
  l.push_back(opt::label("body"));
  l.push_back(
      opt::fload(Vr::v1, opt::mem_bis(Gpr::rsi, Gpr::rax, 8, 8), false));
  l.push_back(opt::fstore(Vr::v1, opt::mem_bis(Gpr::rdx, Gpr::rax, 8), false));
  l.push_back(opt::iadd_imm(Gpr::rax, 1));
  l.push_back(opt::cmp(Gpr::rax, Gpr::rdi));
  l.push_back(opt::jl("body"));
  l.push_back(opt::label("end"));
  l.push_back(opt::vzero(Vr::v0, 1, false));
  l.push_back(opt::ret());
  opt::schedule_instructions(l);

  const KernelContract c = vector_contract();
  AnalyzeOptions o;
  o.contract = &c;
  const AnalysisReport r = analyze(l, o);
  EXPECT_TRUE(has_finding(r, Severity::kError, "oob-load"));
}

// ---- reporting ---------------------------------------------------------

TEST(Analyzer, JsonReportRoundTrips) {
  MInstList l;
  l.push_back(opt::vmov(Vr::v0, Vr::v9, 2, true));
  l.push_back(opt::ret());
  const AnalysisReport r = analyze(l, {});
  const std::string json = r.to_json(l);
  EXPECT_NE(json.find("\"kind\":\"read-uninit-vreg\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
}

TEST(Analyzer, CheckCleanThrowsOnErrorsOnly) {
  MInstList clean;
  clean.push_back(opt::vzero(Vr::v0, 2, true));
  clean.push_back(opt::vzero(Vr::v5, 2, true));  // warning only
  clean.push_back(opt::ret());
  EXPECT_NO_THROW(check_clean(analyze(clean, {}), clean));

  MInstList bad;
  bad.push_back(opt::vmov(Vr::v0, Vr::v9, 2, true));
  bad.push_back(opt::ret());
  EXPECT_THROW(check_clean(analyze(bad, {}), bad), Error);
}

// ---- end to end: every real kernel analyzes clean ----------------------

TEST(Analyzer, GeneratedGemmProvesWithContract) {
  transform::CGenParams p;
  p.mr = 4;
  p.nr = 2;
  p.ku = 2;
  p.prefetch.enabled = true;
  ir::Kernel k = transform::generate_optimized_c(
      frontend::KernelKind::kGemm, frontend::BLayout::kRowPanel, p);
  const KernelContract c = contract_for(frontend::KernelKind::kGemm,
                                        frontend::BLayout::kRowPanel, p, k);
  opt::OptConfig oc;
  oc.isa = Isa::kAvx;
  // generate_assembly itself runs the analyzer with the contract and throws
  // on any error finding — reaching the return is the assertion.
  asmgen::GeneratedKernel g =
      asmgen::generate_assembly(std::move(k), oc, &c);
  EXPECT_FALSE(g.insts.empty());
}

TEST(Analyzer, GeneratedGemvProvesWithContract) {
  transform::CGenParams p;
  p.unroll = 8;
  ir::Kernel k = transform::generate_optimized_c(
      frontend::KernelKind::kGemv, frontend::BLayout::kRowPanel, p);
  const KernelContract c = contract_for(frontend::KernelKind::kGemv,
                                        frontend::BLayout::kRowPanel, p, k);
  opt::OptConfig oc;
  oc.isa = Isa::kSse2;
  asmgen::GeneratedKernel g =
      asmgen::generate_assembly(std::move(k), oc, &c);
  EXPECT_FALSE(g.insts.empty());
}

}  // namespace
}  // namespace augem::analysis
