// Tests for the translation validator (analysis/semantics.hpp): positive
// proofs over real generated kernels, four seeded-defect fixtures that each
// corrupt one real kernel in a way every earlier pass accepts — the
// symbolic equivalence check must reject each with exactly one finding
// naming the corrupted output element — and the scheduler value-numbering
// comparator.

#include "analysis/semantics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/analyzer.hpp"
#include "asmgen/codegen.hpp"
#include "augem/augem.hpp"
#include "frontend/kernels.hpp"
#include "support/error.hpp"
#include "transform/ckernel.hpp"

namespace augem::analysis {
namespace {

using frontend::BLayout;
using frontend::KernelKind;
using opt::MInstList;
using opt::MOp;

/// One generated kernel plus everything needed to analyze it.
struct GenCase {
  asmgen::GeneratedKernel g;
  KernelContract contract;
  SemanticsSpec spec;
  int f64_params = 0;
};

GenCase generate(KernelKind op, opt::VecStrategy strategy,
                 const std::optional<frontend::SmallGemmSpec>& small = {}) {
  opt::OptConfig oc;
  oc.isa = Isa::kFma3;
  oc.strategy = strategy;
  // Scheduling off: the mutations below reorder/drop instructions at known
  // generation-order positions.
  oc.schedule = false;

  transform::CGenParams params;
  if (small) params = small_gemm_params(*small, oc.isa);
  if (strategy == opt::VecStrategy::kShuf) {
    // Shuf requires an n×n register tile (n = SIMD width).
    params.mr = params.nr = 4;
  }

  ir::Kernel k = small ? transform::generate_small_gemm_c(*small, params)
                       : transform::generate_optimized_c(
                             op, BLayout::kRowPanel, params);
  GenCase gc{asmgen::generate_assembly(std::move(k), oc), {}, {}, 0};
  for (const ir::Param& p : gc.g.source.params())
    if (p.type == ir::ScalarType::kF64) ++gc.f64_params;
  gc.contract = small
                    ? contract_for_small_gemm(*small, gc.g.source)
                    : contract_for(op, BLayout::kRowPanel, params, gc.g.source);
  gc.spec.kind = op;
  gc.spec.layout = BLayout::kRowPanel;
  gc.spec.small = small;
  return gc;
}

AnalysisReport analyze_semantics(const GenCase& gc) {
  AnalyzeOptions aopts;
  aopts.num_f64_params = gc.f64_params;
  aopts.contract = &gc.contract;
  aopts.semantics = &gc.spec;
  return analyze(gc.g.insts, aopts);
}

/// The defect fixtures' common assertion: every earlier pass stays clean,
/// and the translation validator emits exactly one finding that names the
/// corrupted output element.
void expect_one_semantics_error(const AnalysisReport& r,
                                const std::string& element) {
  int semantics_errors = 0, other_errors = 0;
  std::string message;
  for (const Finding& f : r.findings) {
    if (f.severity != Severity::kError) continue;
    if (f.kind.rfind("semantics-", 0) == 0) {
      ++semantics_errors;
      message = f.message;
    } else {
      ++other_errors;
    }
  }
  EXPECT_EQ(semantics_errors, 1);
  EXPECT_EQ(other_errors, 0) << r.to_string(MInstList{});
  EXPECT_NE(message.find(element), std::string::npos)
      << "finding does not locate the corrupted element: " << message;
}

std::size_t find_op(const MInstList& l, MOp op, std::size_t from = 0) {
  for (std::size_t i = from; i < l.size(); ++i)
    if (l[i].op == op) return i;
  ADD_FAILURE() << "fixture kernel has no op " << static_cast<int>(op);
  return l.size();
}

// ---- positive proofs ---------------------------------------------------

TEST(Semantics, ProvesGeneratedKernels) {
  for (KernelKind op : {KernelKind::kGemm, KernelKind::kGemv,
                        KernelKind::kAxpy, KernelKind::kDot,
                        KernelKind::kScal}) {
    const GenCase gc = generate(op, opt::VecStrategy::kAuto);
    const AnalysisReport r = analyze_semantics(gc);
    EXPECT_EQ(r.errors(), 0u) << frontend::kernel_kind_name(op) << ":\n"
                              << r.to_string(gc.g.insts);
  }
}

TEST(Semantics, ProvesSmallGemmWithFusedEpilogue) {
  frontend::SmallGemmSpec spec;
  spec.m = spec.n = spec.k = 4;
  spec.epilogue = {.scale = true, .bias = true, .relu = true};
  const GenCase gc = generate(KernelKind::kGemm, opt::VecStrategy::kVdup,
                              spec);
  const AnalysisReport r = analyze_semantics(gc);
  EXPECT_EQ(r.errors(), 0u) << r.to_string(gc.g.insts);
}

// ---- seeded defects ----------------------------------------------------

// The y-store of the first accumulate group hoisted above the FMA that
// feeds it — the reorder a buggy scheduler would produce by dropping the
// store's RAW dependence. The store now writes the freshly loaded y value,
// so one y element silently loses its accumulation.
TEST(SemanticsDefect, StoreReorderedAcrossDependentLoad) {
  GenCase gc = generate(KernelKind::kGemv, opt::VecStrategy::kAuto);
  MInstList& l = gc.g.insts;
  const std::size_t store = find_op(l, MOp::kVStore);
  ASSERT_LT(store, l.size());
  std::size_t fma = l.size();
  for (std::size_t i = 0; i < store; ++i)
    if (l[i].op == MOp::kVFma231 || l[i].op == MOp::kVFma4 ||
        l[i].op == MOp::kVAdd)
      fma = i;
  ASSERT_LT(fma, store) << "no arithmetic feeds the first store";
  std::rotate(l.begin() + static_cast<std::ptrdiff_t>(fma),
              l.begin() + static_cast<std::ptrdiff_t>(store),
              l.begin() + static_cast<std::ptrdiff_t>(store) + 1);
  expect_one_semantics_error(analyze_semantics(gc), "y[");
}

// One FMA dropped from the GEMM k-loop: the accumulator still advances
// inductively (every earlier pass is happy), but one C element sums the
// wrong products.
TEST(SemanticsDefect, DroppedFmaInKLoop) {
  GenCase gc = generate(KernelKind::kGemm, opt::VecStrategy::kAuto);
  MInstList& l = gc.g.insts;
  const std::size_t fma = find_op(l, MOp::kVFma231);
  ASSERT_LT(fma, l.size());
  l.erase(l.begin() + static_cast<std::ptrdiff_t>(fma));
  expect_one_semantics_error(analyze_semantics(gc), "C[");
}

// The Shuf strategy pairs each accumulator lane with a shufpd-selected B
// element; flipping the immediate of the first shuffle swaps which element
// each lane sees, so the per-lane products pair the wrong operands.
TEST(SemanticsDefect, WrongLaneShuffle) {
  GenCase gc = generate(KernelKind::kGemm, opt::VecStrategy::kShuf);
  MInstList& l = gc.g.insts;
  const std::size_t shuf = find_op(l, MOp::kVShuf);
  ASSERT_LT(shuf, l.size());
  l[shuf].imm ^= 1;
  expect_one_semantics_error(analyze_semantics(gc), "C[");
}

// ReLU applied before the beta update: the kVMax of the fused epilogue
// moved to just after the C-tile load (and after the zero register's
// definition, so definite assignment stays clean). The stored element
// clamps the wrong intermediate.
TEST(SemanticsDefect, ReluBeforeBetaUpdate) {
  frontend::SmallGemmSpec spec;
  spec.m = spec.n = spec.k = 4;
  spec.epilogue = {.scale = true, .relu = true};
  GenCase gc = generate(KernelKind::kGemm, opt::VecStrategy::kVdup, spec);
  MInstList& l = gc.g.insts;
  const std::size_t vmax = find_op(l, MOp::kVMax);
  ASSERT_LT(vmax, l.size());
  // Insertion point: right after the latest of (the preceding C load, the
  // definition of the max's zero operand).
  std::size_t at = 0;
  for (std::size_t i = 0; i < vmax; ++i) {
    if (l[i].op == MOp::kVLoad) at = i;
    if (l[i].op == MOp::kVZero && l[i].vdst == l[vmax].vsrc2) at = std::max(at, i);
  }
  ASSERT_GT(at, 0u);
  ASSERT_LT(at + 1, vmax) << "max already adjacent to the load";
  std::rotate(l.begin() + static_cast<std::ptrdiff_t>(at) + 1,
              l.begin() + static_cast<std::ptrdiff_t>(vmax),
              l.begin() + static_cast<std::ptrdiff_t>(vmax) + 1);
  expect_one_semantics_error(analyze_semantics(gc), "C[");
}

// ---- scheduler comparator ----------------------------------------------

TEST(ScheduleValidation, AcceptsRealSchedules) {
  // generate() with scheduling ON runs the validator via the debug hook;
  // also drive the comparator directly on an identity permutation.
  opt::OptConfig oc;
  oc.isa = Isa::kFma3;
  oc.strategy = opt::VecStrategy::kAuto;
  ir::Kernel k = transform::generate_optimized_c(
      KernelKind::kGemm, BLayout::kRowPanel, transform::CGenParams{});
  const asmgen::GeneratedKernel g =
      asmgen::generate_assembly(std::move(k), oc);
  EXPECT_NO_THROW(validate_schedule_equivalence(g.insts, g.insts));
}

TEST(ScheduleValidation, RejectsDroppedInstruction) {
  const GenCase gc = generate(KernelKind::kGemm, opt::VecStrategy::kAuto);
  MInstList broken = gc.g.insts;
  broken.erase(broken.begin() +
               static_cast<std::ptrdiff_t>(find_op(broken, MOp::kVFma231)));
  EXPECT_THROW(validate_schedule_equivalence(gc.g.insts, broken), Error);
}

TEST(ScheduleValidation, RejectsStoreHoistedAboveItsProducer) {
  const GenCase gc = generate(KernelKind::kGemv, opt::VecStrategy::kAuto);
  MInstList broken = gc.g.insts;
  const std::size_t store = find_op(broken, MOp::kVStore);
  ASSERT_GT(store, 0u);
  std::swap(broken[store], broken[store - 1]);
  EXPECT_THROW(validate_schedule_equivalence(gc.g.insts, broken), Error);
}

}  // namespace
}  // namespace augem::analysis
