// Unit tests for the harness's floating-point comparison policy: the
// comparator itself must be trustworthy before its verdicts mean anything.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "check/ulp.hpp"

namespace augem::check {
namespace {

const double kNaN = std::numeric_limits<double>::quiet_NaN();
const double kInf = std::numeric_limits<double>::infinity();

TEST(UlpDistance, IdenticalValuesAreZeroApart) {
  EXPECT_EQ(ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(ulp_distance(0.0, 0.0), 0u);
  EXPECT_EQ(ulp_distance(-3.5, -3.5), 0u);
  EXPECT_EQ(ulp_distance(kInf, kInf), 0u);
}

TEST(UlpDistance, AdjacentRepresentablesAreOneApart) {
  const double next = std::nextafter(1.0, 2.0);
  EXPECT_EQ(ulp_distance(1.0, next), 1u);
  const double prev = std::nextafter(-2.0, -3.0);
  EXPECT_EQ(ulp_distance(-2.0, prev), 1u);
}

TEST(UlpDistance, CountsRepresentablesAcrossZero) {
  // -0.0 and +0.0 are distinct bit patterns, adjacent on the monotonic
  // line (the comparator's absolute term makes the distinction moot near
  // zero). The smallest subnormals sit one step outside each of them.
  EXPECT_EQ(ulp_distance(0.0, -0.0), 1u);
  const double tiny = std::nextafter(0.0, 1.0);
  EXPECT_EQ(ulp_distance(tiny, 0.0), 1u);
  EXPECT_EQ(ulp_distance(-tiny, -0.0), 1u);
  EXPECT_EQ(ulp_distance(-tiny, tiny), 3u);
}

TEST(UlpDistance, NaNHandling) {
  EXPECT_EQ(ulp_distance(kNaN, kNaN), 0u);
  EXPECT_EQ(ulp_distance(kNaN, 1.0),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(ulp_distance(0.0, kNaN),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(CompareSpec, NaNMustMeetNaN) {
  CompareSpec spec;
  EXPECT_TRUE(spec.close(kNaN, kNaN));
  EXPECT_FALSE(spec.close(kNaN, 0.0));
  EXPECT_FALSE(spec.close(0.0, kNaN));
  EXPECT_FALSE(spec.close(kNaN, kInf));
}

TEST(CompareSpec, InfinityMustMatchInSign) {
  CompareSpec spec;
  EXPECT_TRUE(spec.close(kInf, kInf));
  EXPECT_TRUE(spec.close(-kInf, -kInf));
  EXPECT_FALSE(spec.close(kInf, -kInf));
  EXPECT_FALSE(spec.close(kInf, 1e308));
  EXPECT_FALSE(spec.close(1e308, kInf));
}

TEST(CompareSpec, ExactAndNearbyFinitesPass) {
  CompareSpec spec{.depth = 4, .scale = 1.0};
  EXPECT_TRUE(spec.close(0.5, 0.5));
  // A few ULPs of reassociation noise is the whole point of the policy.
  double x = 1.0 / 3.0;
  double y = x;
  for (int i = 0; i < 3; ++i) y = std::nextafter(y, 1.0);
  EXPECT_TRUE(spec.close(y, x));
}

TEST(CompareSpec, GrosslyWrongValuesFail) {
  CompareSpec spec{.depth = 100, .scale = 1.0};
  EXPECT_FALSE(spec.close(0.51273, 0.86203));
  EXPECT_FALSE(spec.close(1.0, -1.0));
  EXPECT_FALSE(spec.close(2.0, 1.0));
}

TEST(CompareSpec, AbsoluteTolCoversCancellationNearZero) {
  // Two orderings of a cancelling sum can disagree by ~1e-16 absolutely
  // while being millions of ULPs apart near zero; the absolute term of the
  // policy must absorb that.
  CompareSpec spec{.depth = 8, .scale = 1.0};
  EXPECT_TRUE(spec.close(1e-17, -1e-17));
  EXPECT_TRUE(spec.close(0.0, 5e-15));
}

}  // namespace
}  // namespace augem::check
