// Bounded tier-1 run of the differential fuzzing harness: a fixed-seed
// slice of the search space on every ctest invocation, so a regression in
// any execution path (interpreter, VM, JIT, driver, wrappers) or in the
// static verifier surfaces in CI, not just in long fuzzing sessions. The
// full-size runs live behind tools/fuzz_kernels.

#include <gtest/gtest.h>

#include <sstream>

#include "check/fuzz.hpp"

namespace augem::check {
namespace {

TEST(FuzzSmoke, BoundedSweepFindsNoMismatches) {
  FuzzOptions opts;
  opts.seed = 2026;
  opts.cases = 120;
  const FuzzReport rep = run_fuzz(opts);
  EXPECT_EQ(rep.cases_run, 120);
  std::ostringstream details;
  for (const Failure& f : rep.failures)
    details << "[" << f.path << "] " << f.config << " | " << f.instance
            << " | " << f.detail << "\n";
  EXPECT_TRUE(rep.ok()) << details.str();

  // Every path family must actually have run — a harness that silently
  // skips a path would report hollow "OK"s.
  EXPECT_GT(rep.path_runs.at("verifier"), 0);
  EXPECT_GT(rep.path_runs.at("interp"), 0);
  EXPECT_GT(rep.path_runs.at("vm"), 0);
  EXPECT_GT(rep.path_runs.at("driver-serial"), 0);
  EXPECT_GT(rep.path_runs.at("driver-threaded"), 0);
  bool any_blas = false, any_level3 = false, any_level3_engine = false;
  for (const auto& [name, runs] : rep.path_runs) {
    any_blas |= name.rfind("blas:", 0) == 0 && runs > 0;
    any_level3 |= name.rfind("level3:", 0) == 0 && runs > 0;
    any_level3_engine |= name.rfind("level3-engine:", 0) == 0 && runs > 0;
  }
  EXPECT_TRUE(any_blas);
  EXPECT_TRUE(any_level3);
  EXPECT_TRUE(any_level3_engine);
}

TEST(FuzzSmoke, DeterministicForFixedSeed) {
  FuzzOptions opts;
  opts.seed = 99;
  opts.cases = 25;
  const FuzzReport a = run_fuzz(opts);
  const FuzzReport b = run_fuzz(opts);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.cases_run, b.cases_run);
  EXPECT_EQ(a.configs_rejected, b.configs_rejected);
}

TEST(FuzzSmoke, SingleCaseReplayMatchesTheSweep) {
  // `--case I` must reproduce exactly what the sweep did for case I —
  // this is the contract the failure reports' repro lines rely on.
  FuzzOptions sweep;
  sweep.seed = 5;
  sweep.cases = 10;
  const FuzzReport full = run_fuzz(sweep);

  FuzzOptions one = sweep;
  one.only_case = 7;
  const FuzzReport replay = run_fuzz(one);
  EXPECT_EQ(replay.cases_run, 1);
  EXPECT_EQ(replay.failures.size(), 0u);
  EXPECT_EQ(full.ok(), true);
}

TEST(FuzzSmoke, PathTogglesDisableOnlyTheirPath) {
  FuzzOptions opts;
  opts.seed = 12;
  opts.cases = 15;
  opts.run_jit = false;
  opts.run_blas = false;
  const FuzzReport rep = run_fuzz(opts);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.path_runs.count("jit"), 0u);
  for (const auto& [name, runs] : rep.path_runs) {
    EXPECT_NE(name.rfind("blas:", 0), 0u) << name << " ran " << runs;
    // run_blas gates the Level-3 library sweep too; the engine path (and,
    // on JIT hosts, the runtime dispatch path) are level3-only toggles.
    EXPECT_EQ(name.find("level3:refblas"), std::string::npos)
        << name << " ran " << runs;
  }
  EXPECT_GT(rep.path_runs.at("vm"), 0);
}

TEST(FuzzSmoke, Level3ToggleDisablesAllLevel3Paths) {
  FuzzOptions opts;
  opts.seed = 12;
  opts.cases = 15;
  opts.run_level3 = false;
  const FuzzReport rep = run_fuzz(opts);
  EXPECT_TRUE(rep.ok());
  for (const auto& [name, runs] : rep.path_runs) {
    EXPECT_NE(name.rfind("level3:", 0), 0u) << name << " ran " << runs;
    EXPECT_NE(name.rfind("level3-engine:", 0), 0u) << name << " ran " << runs;
  }
  // The classic paths are untouched by the toggle.
  EXPECT_GT(rep.path_runs.at("vm"), 0);
  bool any_blas = false;
  for (const auto& [name, runs] : rep.path_runs)
    any_blas |= name.rfind("blas:", 0) == 0 && runs > 0;
  EXPECT_TRUE(any_blas);
}

TEST(FuzzSmoke, ReportSerializesToJson) {
  FuzzOptions opts;
  opts.seed = 3;
  opts.cases = 5;
  const FuzzReport rep = run_fuzz(opts);
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"seed\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cases_run\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"path_runs\":{"), std::string::npos) << json;
}

}  // namespace
}  // namespace augem::check
